"""Tests for the visit-order optimizers (Held-Karp & friends)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SolverError
from repro.solvers import (
    brute_force_min_order,
    held_karp_min_order,
    nearest_neighbor_order,
    two_opt_improve,
)
from repro.solvers.group import order_cost


def matrix(n, fn):
    return [[Fraction(fn(i, j)) for j in range(n)] for i in range(n)]


def zeros(n):
    return [Fraction(0)] * n


class TestHeldKarp:
    def test_trivial_sizes(self):
        assert held_karp_min_order([], []) == (0, ())
        cost, order = held_karp_min_order([Fraction(5)], [[Fraction(0)]])
        assert cost == 5 and order == (0,)

    def test_picks_cheap_path(self):
        # 3 groups, transition cost = |i - j|: best order is monotone.
        trans = matrix(3, lambda i, j: abs(i - j))
        cost, order = held_karp_min_order(zeros(3), trans)
        assert cost == 2
        assert order in ((0, 1, 2), (2, 1, 0))

    def test_start_costs_matter(self):
        start = [Fraction(100), Fraction(0), Fraction(100)]
        trans = matrix(3, lambda i, j: 1)
        cost, order = held_karp_min_order(start, trans)
        assert order[0] == 1 and cost == 2

    def test_agrees_with_brute_force_random(self):
        import random

        rng = random.Random(42)
        for trial in range(20):
            n = rng.randrange(2, 7)
            start = [Fraction(rng.randrange(10)) for _ in range(n)]
            trans = matrix(n, lambda i, j: rng.randrange(10))
            hk_cost, hk_order = held_karp_min_order(start, trans)
            bf_cost, _ = brute_force_min_order(start, trans)
            assert hk_cost == bf_cost
            assert order_cost(hk_order, start, trans) == hk_cost

    def test_precedence_respected(self):
        trans = matrix(3, lambda i, j: 1)
        cost, order = held_karp_min_order(
            zeros(3), trans, precedence=[(2, 0), (1, 0)]
        )
        assert order.index(0) == 2  # 0 must come last

    def test_precedence_agrees_with_brute_force(self):
        import random

        rng = random.Random(7)
        for trial in range(10):
            n = 5
            start = [Fraction(rng.randrange(5)) for _ in range(n)]
            trans = matrix(n, lambda i, j: rng.randrange(5))
            prec = [(0, 2), (1, 3)]
            hk = held_karp_min_order(start, trans, precedence=prec)
            bf = brute_force_min_order(start, trans, precedence=prec)
            assert hk[0] == bf[0]

    def test_cyclic_precedence_rejected(self):
        trans = matrix(2, lambda i, j: 1)
        with pytest.raises(SolverError):
            held_karp_min_order(zeros(2), trans, precedence=[(0, 1), (1, 0)])

    def test_size_guard(self):
        n = 19
        with pytest.raises(SolverError):
            held_karp_min_order(zeros(n), matrix(n, lambda i, j: 1))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            held_karp_min_order(zeros(2), matrix(3, lambda i, j: 1))

    def test_bad_precedence_pair(self):
        with pytest.raises(ValueError):
            held_karp_min_order(zeros(2), matrix(2, lambda i, j: 1), precedence=[(0, 0)])


class TestHeuristicOrders:
    def test_nearest_neighbor_valid_order(self):
        trans = matrix(5, lambda i, j: abs(i - j))
        cost, order = nearest_neighbor_order(zeros(5), trans)
        assert sorted(order) == list(range(5))
        assert cost == order_cost(order, zeros(5), trans)

    def test_nearest_neighbor_respects_precedence(self):
        trans = matrix(4, lambda i, j: 1)
        _, order = nearest_neighbor_order(
            zeros(4), trans, precedence=[(3, 0), (2, 0)]
        )
        assert order.index(0) > max(order.index(2), order.index(3))

    def test_two_opt_never_worsens(self):
        import random

        rng = random.Random(3)
        n = 7
        start = [Fraction(rng.randrange(10)) for _ in range(n)]
        trans = matrix(n, lambda i, j: rng.randrange(10))
        nn_cost, nn_order = nearest_neighbor_order(start, trans)
        opt_cost, opt_order = two_opt_improve(nn_order, start, trans)
        assert opt_cost <= nn_cost
        assert order_cost(opt_order, start, trans) == opt_cost

    def test_two_opt_reaches_optimum_on_line_metric(self):
        trans = matrix(6, lambda i, j: abs(i - j))
        _, nn = nearest_neighbor_order(zeros(6), trans)
        cost, _ = two_opt_improve(nn, zeros(6), trans)
        hk_cost, _ = held_karp_min_order(zeros(6), trans)
        assert cost == hk_cost

    def test_two_opt_respects_precedence(self):
        trans = matrix(5, lambda i, j: (i * 3 + j * 5) % 7)
        prec = [(0, 4), (1, 4)]
        _, nn = nearest_neighbor_order(zeros(5), trans, precedence=prec)
        _, improved = two_opt_improve(nn, zeros(5), trans, precedence=prec)
        pos = {g: k for k, g in enumerate(improved)}
        assert pos[0] < pos[4] and pos[1] < pos[4]


class TestTwoOptValidation:
    """two_opt_improve must reject bad inputs up front with the same
    errors the other optimizers raise (regression: a wrong-sized trans
    used to surface as a bare IndexError mid-search, and an invalid
    order was silently 'improved')."""

    def test_empty_order(self):
        assert two_opt_improve([], [], []) == (0, ())

    def test_wrong_sized_inputs_raise_value_error(self):
        with pytest.raises(ValueError):
            two_opt_improve([0, 1], zeros(2), matrix(3, lambda i, j: 1))
        with pytest.raises(ValueError):
            two_opt_improve([0, 1], zeros(3), matrix(2, lambda i, j: 1))

    def test_non_permutation_order_rejected(self):
        with pytest.raises(ValueError):
            two_opt_improve([0, 0], zeros(2), matrix(2, lambda i, j: 1))
        with pytest.raises(ValueError):
            two_opt_improve([1, 2], zeros(2), matrix(2, lambda i, j: 1))

    def test_precedence_violating_order_rejected(self):
        with pytest.raises(ValueError):
            two_opt_improve(
                [1, 0], zeros(2), matrix(2, lambda i, j: 1), precedence=[(0, 1)]
            )

    def test_bad_precedence_pair_rejected(self):
        with pytest.raises(ValueError):
            two_opt_improve(
                [0, 1], zeros(2), matrix(2, lambda i, j: 1), precedence=[(0, 0)]
            )


@st.composite
def order_instances(draw):
    """A random (start, trans, precedence) triple; precedence pairs are
    oriented (i, j) with i < j so the identity order always satisfies
    them (the constraint graph is a DAG by construction)."""
    n = draw(st.integers(min_value=2, max_value=6))
    start = [Fraction(draw(st.integers(0, 9))) for _ in range(n)]
    trans = [
        [Fraction(draw(st.integers(0, 9))) for _ in range(n)] for _ in range(n)
    ]
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    prec = draw(st.lists(st.sampled_from(pairs), max_size=n, unique=True))
    return start, trans, prec


class TestHeldKarpHypothesis:
    @given(order_instances())
    @settings(max_examples=60, deadline=None)
    def test_held_karp_equals_brute_force_under_random_precedence(self, instance):
        start, trans, prec = instance
        hk_cost, hk_order = held_karp_min_order(start, trans, precedence=prec)
        bf_cost, _ = brute_force_min_order(start, trans, precedence=prec)
        assert hk_cost == bf_cost
        assert order_cost(hk_order, start, trans) == hk_cost
        pos = {g: k for k, g in enumerate(hk_order)}
        assert all(pos[i] < pos[j] for i, j in prec)

    @given(order_instances())
    @settings(max_examples=30, deadline=None)
    def test_heuristic_chain_never_beats_exact_or_breaks_precedence(self, instance):
        start, trans, prec = instance
        nn_cost, nn_order = nearest_neighbor_order(start, trans, precedence=prec)
        impr_cost, impr_order = two_opt_improve(
            nn_order, start, trans, precedence=prec
        )
        hk_cost, _ = held_karp_min_order(start, trans, precedence=prec)
        assert hk_cost <= impr_cost <= nn_cost
        pos = {g: k for k, g in enumerate(impr_order)}
        assert all(pos[i] < pos[j] for i, j in prec)
