"""Differential harness: every search engine against ``engine="bits"``.

The bitmask kernel is the calibrated reference (itself pinned to the
legacy frozenset solver and the golden optima).  Each engine listed in
``ENGINES`` is locked to it on

* the exact optimum cost (compared as exact ``Fraction`` values),
* schedule validity (the returned schedule must replay through the
  independent :func:`repro.validate_schedule` auditor at the same cost),
* expansion-count sanity (engines order work differently, so counters
  are *comparable*, not identical: each must stay within a loose
  multiplicative band of the reference),

over hypothesis-generated random DAGs x models x red limits plus the
hardness-gadget zoo.  A future engine gets the whole battery by adding
its ``engine=`` string to ``ENGINES``.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import ComputationDAG, PebblingInstance, validate_schedule
from repro.gadgets import h2c_dag
from repro.generators import dag_from_spec
from repro.solvers import solve_optimal

MODELS = ("base", "oneshot", "nodel", "compcost")

#: engines under differential test; the reference "bits" engine is
#: implicit.  Add one id here to give a new engine full coverage.
ENGINES = ("legacy", "numpy", "par:2")

#: the batch/parallel engines amortize over large frontiers and the
#: reference runs twice per example, so the example budget is modest;
#: the gadget zoo below covers the structured cases deterministically.
DIFF_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: how far an engine's expanded/generated counters may drift from the
#: reference before we call it a bug (batching changes pop order and
#: dominance timing, but not by orders of magnitude)
COUNTER_BAND = 100


def _h2c(r):
    dag, _ = h2c_dag(r)
    return dag


#: the hardness-gadget zoo: reduction DAGs and classic instances, all
#: small enough for every engine inside tier-1 time
GADGETS = [
    ("pyramid:3", "base", 3),
    ("pyramid:3", "compcost", 3),
    ("grid:3x3", "oneshot", 3),
    ("butterfly:2", "nodel", 3),
    ("chain:8", "base", 2),
    ("tree:4", "oneshot", 3),
    ("tradeoff:2x4", "nodel", 4),
    ("h2c:4", "base", 4),
]


def _gadget_instance(spec: str, model: str, red_limit: int) -> PebblingInstance:
    if spec.startswith("h2c:"):
        dag = _h2c(int(spec.split(":")[1]))
    else:
        dag = dag_from_spec(spec)
    return PebblingInstance(dag=dag, model=model, red_limit=red_limit)


@st.composite
def instances(draw):
    """A random small pebbling instance (every model, feasible R)."""
    n = draw(st.integers(min_value=1, max_value=7))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = []
    indeg = [0] * n
    for (u, v) in pairs:
        if indeg[v] < 3 and draw(st.booleans()):
            chosen.append((u, v))
            indeg[v] += 1
    dag = ComputationDAG(edges=chosen, nodes=range(n))
    model = draw(st.sampled_from(MODELS))
    red_limit = dag.max_indegree + 1 + draw(st.integers(min_value=0, max_value=2))
    return PebblingInstance(dag=dag, model=model, red_limit=red_limit)


def assert_engine_matches(engine: str, inst: PebblingInstance,
                          budget: int = 300_000) -> None:
    """The whole differential contract for one (engine, instance) pair."""
    reference = solve_optimal(inst, budget=budget, engine="bits")
    result = solve_optimal(inst, budget=budget, engine=engine)

    # 1. exact optimum agreement
    assert result.cost == reference.cost, (
        f"{engine} disagrees with bits: {result.cost} != {reference.cost}"
    )

    # 2. independently auditable schedule at exactly the optimal cost
    assert result.schedule is not None
    report = validate_schedule(inst, result.schedule)
    assert report.ok, report.violations[:3]
    assert report.cost == result.cost

    # 3. counter sanity: same order of magnitude of work
    assert result.expanded <= COUNTER_BAND * reference.expanded + COUNTER_BAND
    assert reference.expanded <= COUNTER_BAND * result.expanded + COUNTER_BAND
    assert result.generated >= result.expanded - 1  # every pop was generated
    if reference.cost > 0:
        assert result.expanded >= 1


@pytest.mark.parametrize("engine", ENGINES)
class TestEngineDifferential:
    @settings(**DIFF_SETTINGS)
    @given(inst=instances())
    def test_random_instances(self, engine, inst):
        assert_engine_matches(engine, inst)

    @pytest.mark.parametrize(
        "spec,model,red_limit", GADGETS,
        ids=[f"{s}-{m}-r{r}" for s, m, r in GADGETS],
    )
    def test_gadget_zoo(self, engine, spec, model, red_limit):
        assert_engine_matches(engine, _gadget_instance(spec, model, red_limit))


def test_engines_list_is_nonempty_and_excludes_reference():
    """Guard the harness itself: bits must stay the implicit reference."""
    assert ENGINES
    assert "bits" not in ENGINES


def test_unknown_engine_raises_with_catalogue():
    inst = _gadget_instance("pyramid:3", "base", 3)
    with pytest.raises(ValueError, match=r"unknown engine 'typo'.*bits.*legacy.*numpy.*par"):
        solve_optimal(inst, engine="typo")


def test_zero_cost_optimum_agrees_across_engines():
    """Zero-cost schedules (free computes) exercise the Dial zero-bucket
    refill and the parallel incumbent-at-zero path."""
    inst = _gadget_instance("chain:8", "base", 2)
    costs = {e: solve_optimal(inst, engine=e).cost for e in ENGINES}
    assert set(costs.values()) == {Fraction(0)}
