"""The exact multi-level solver: golden 2-level equivalence and bounds.

A 2-level hierarchy with capacities ``(R, unbounded)`` and unit transfer
costs *is* the red-blue base game (:func:`two_level_equivalent`), so on
every (dag, R) combination of the pinned golden-optima table the packed
multi-level solver must return the same optimum as both red-blue engines
— three structurally different searches agreeing on one number.
"""

from fractions import Fraction

import pytest

from repro.core.errors import BudgetExceededError
from repro.generators import pyramid_dag
from repro.multilevel import (
    HierarchySpec,
    MultilevelInstance,
    MultilevelSimulator,
    multilevel_topological_schedule,
    two_level_equivalent,
)
from repro.solvers import (
    multilevel_cost_bounds,
    solve_multilevel_optimal,
    solve_optimal,
    solve_optimal_legacy,
)

from .test_golden_optima import _FACTORIES, GOLDEN

#: every distinct (dag, R) combination of the golden table
COMBOS = sorted({(dag, red) for dag, _model, red, _cost in GOLDEN})


@pytest.fixture(scope="module")
def dags():
    return {name: factory() for name, factory in _FACTORIES.items()}


class TestTwoLevelGoldenEquivalence:
    @pytest.mark.parametrize(
        "dag_name,red", COMBOS, ids=[f"{d}-R{r}" for d, r in COMBOS]
    )
    def test_matches_both_red_blue_engines(self, dags, dag_name, red):
        ml = MultilevelInstance(
            dag=dags[dag_name],
            spec=HierarchySpec(capacities=(red, None), transfer_costs=(Fraction(1),)),
        )
        rb = two_level_equivalent(ml)
        result = solve_multilevel_optimal(ml)
        bits = solve_optimal(rb, return_schedule=False).cost
        legacy = solve_optimal_legacy(rb, return_schedule=False).cost
        assert result.cost == bits == legacy
        # the reconstructed move list must be independently auditable
        replay = MultilevelSimulator(ml).run(result.moves, require_complete=True)
        assert replay.cost == result.cost


@pytest.fixture
def three_level():
    return MultilevelInstance(
        dag=pyramid_dag(3),
        spec=HierarchySpec(
            capacities=(3, 6, None), transfer_costs=(Fraction(1), Fraction(4))
        ),
    )


class TestThreeLevel:
    def test_exact_bounded_by_baseline_and_replayable(self, three_level):
        result = solve_multilevel_optimal(three_level)
        topo = MultilevelSimulator(three_level).run(
            multilevel_topological_schedule(three_level), require_complete=True
        )
        assert result.cost <= topo.cost
        replay = MultilevelSimulator(three_level).run(
            result.moves, require_complete=True
        )
        assert replay.cost == result.cost

    def test_dominance_pruning_preserves_the_optimum(self, three_level):
        fast = solve_multilevel_optimal(three_level, return_schedule=False)
        plain = solve_multilevel_optimal(
            three_level, return_schedule=False, dominance=False
        )
        assert fast.cost == plain.cost
        assert fast.expanded <= plain.expanded

    def test_priced_computation_is_charged(self):
        ml = MultilevelInstance(
            dag=pyramid_dag(2),
            spec=HierarchySpec(
                capacities=(6, None),
                transfer_costs=(Fraction(1),),
                compute_cost=Fraction(1, 100),
            ),
        )
        result = solve_multilevel_optimal(ml)
        # R=6 holds the whole pyramid: no transfers, one compute per node
        assert result.cost == Fraction(6, 100)

    def test_mid_level_capacity_changes_the_optimum(self):
        dag = pyramid_dag(3)
        wide = MultilevelInstance(
            dag=dag,
            spec=HierarchySpec(
                capacities=(3, 8, None), transfer_costs=(Fraction(1), Fraction(100))
            ),
        )
        narrow = MultilevelInstance(
            dag=dag,
            spec=HierarchySpec(
                capacities=(3, 1, None), transfer_costs=(Fraction(1), Fraction(100))
            ),
        )
        cost_wide = solve_multilevel_optimal(wide, return_schedule=False).cost
        cost_narrow = solve_multilevel_optimal(narrow, return_schedule=False).cost
        assert cost_wide <= cost_narrow


class TestBudgetAndBounds:
    def test_budget_raises_by_default(self, three_level):
        with pytest.raises(BudgetExceededError):
            solve_multilevel_optimal(three_level, budget=5)

    def test_unknown_on_exhausted_mode_rejected_up_front(self, three_level):
        with pytest.raises(ValueError, match="on_exhausted"):
            solve_multilevel_optimal(three_level, on_exhausted="bounds")

    def test_bounds_bracket_the_optimum(self, three_level):
        exact = solve_multilevel_optimal(three_level, return_schedule=False).cost
        lower, upper = multilevel_cost_bounds(three_level, node_budget=25)
        assert lower <= exact <= upper

    def test_bounds_collapse_when_search_finishes(self, three_level):
        exact = solve_multilevel_optimal(three_level, return_schedule=False).cost
        lower, upper = multilevel_cost_bounds(three_level, node_budget=200_000)
        assert lower == upper == exact

    def test_empty_dag_is_free(self):
        from repro import ComputationDAG

        ml = MultilevelInstance(
            dag=ComputationDAG(),
            spec=HierarchySpec(capacities=(2, None), transfer_costs=(Fraction(1),)),
        )
        result = solve_multilevel_optimal(ml)
        assert result.cost == 0
        assert result.moves == []
