"""Tests for the IDA* solver — the Dijkstra cross-check."""

import pytest

from repro import BudgetExceededError, ComputationDAG, PebblingInstance, validate_schedule
from repro.generators import chain_dag, pyramid_dag, random_dag
from repro.solvers import solve_optimal, solve_optimal_idastar
from repro.solvers.exact import compcost_heuristic


ALL_MODELS = ["base", "oneshot", "nodel", "compcost"]


class TestAgreementWithDijkstra:
    """The load-bearing property: two independent exact algorithms must
    return identical optima everywhere."""

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_pyramid(self, model):
        inst = PebblingInstance(dag=pyramid_dag(2), model=model, red_limit=3)
        assert (
            solve_optimal_idastar(inst, return_schedule=False).cost
            == solve_optimal(inst, return_schedule=False).cost
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_random_dags_oneshot(self, seed):
        dag = random_dag(7, 0.35, seed=seed, max_indegree=2)
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=3)
        assert (
            solve_optimal_idastar(inst, return_schedule=False).cost
            == solve_optimal(inst, return_schedule=False).cost
        )

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_gadget_instance(self, model):
        from repro.gadgets import h2c_dag

        dag, _ = h2c_dag(4)
        inst = PebblingInstance(dag=dag, model=model, red_limit=4)
        assert (
            solve_optimal_idastar(inst, return_schedule=False).cost
            == solve_optimal(inst, return_schedule=False).cost
        )


class TestContracts:
    def test_returns_valid_optimal_schedule(self):
        inst = PebblingInstance(dag=pyramid_dag(2), model="oneshot", red_limit=3)
        res = solve_optimal_idastar(inst)
        report = validate_schedule(inst, res.schedule)
        assert report.ok
        assert report.cost == res.cost

    def test_empty_dag(self):
        inst = PebblingInstance(dag=ComputationDAG(), model="oneshot", red_limit=1)
        res = solve_optimal_idastar(inst)
        assert res.cost == 0 and len(res.schedule) == 0

    def test_zero_cost_instances_terminate(self):
        # all-free pebbling: the first threshold (0) must already succeed
        inst = PebblingInstance(dag=chain_dag(6), model="oneshot", red_limit=2)
        res = solve_optimal_idastar(inst, return_schedule=False)
        assert res.cost == 0

    def test_budget_guard(self):
        inst = PebblingInstance(dag=pyramid_dag(3), model="oneshot", red_limit=4)
        with pytest.raises(BudgetExceededError):
            solve_optimal_idastar(inst, budget=10)

    def test_heuristic_compatible(self):
        inst = PebblingInstance(dag=pyramid_dag(2), model="compcost", red_limit=3)
        plain = solve_optimal_idastar(inst, return_schedule=False)
        guided = solve_optimal_idastar(
            inst, heuristic=compcost_heuristic, return_schedule=False
        )
        assert plain.cost == guided.cost
