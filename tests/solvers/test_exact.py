"""Tests for the exact state-space solver — the library's ground truth."""

from fractions import Fraction

import pytest

from repro import (
    BudgetExceededError,
    ComputationDAG,
    PebblingInstance,
    PebblingSimulator,
    validate_schedule,
)
from repro.generators import chain_dag, independent_tasks_dag, pyramid_dag
from repro.solvers import decide_pebbling, solve_optimal
from repro.solvers.exact import compcost_heuristic


def opt(dag, model, R, **kw):
    return solve_optimal(PebblingInstance(dag=dag, model=model, red_limit=R), **kw)


class TestHandSolvedInstances:
    def test_chain_is_free_with_two_pebbles(self):
        assert opt(chain_dag(6), "oneshot", 2).cost == 0

    def test_chain_nodel_must_store_everything_but_r(self):
        # nodel: every pebble placed stays; chain of 5 with R=2 must turn
        # nodes blue as it advances: n - R stores.
        res = opt(chain_dag(5), "nodel", 2)
        assert res.cost == 3

    def test_diamond_free_with_three(self):
        dag = ComputationDAG([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        assert opt(dag, "oneshot", 3).cost == 0

    def test_diamond_with_two_pebbles_infeasible(self):
        from repro import InfeasibleInstanceError

        with pytest.raises(InfeasibleInstanceError):
            PebblingInstance(
                dag=ComputationDAG([("a", "c"), ("b", "c")]),
                model="oneshot",
                red_limit=2,
            )

    def test_two_wide_tasks_pay_one_store_for_the_first_sink(self):
        # Two tasks, each needing 3 private inputs, R=4.  The inputs of the
        # first task are deletable after use (free), but the first task
        # itself is a sink and must keep a pebble: computing the second
        # task forces exactly one store.  With R=5 the spare slot removes it.
        dag = independent_tasks_dag(2, 3)
        assert opt(dag, "oneshot", 4).cost == 1
        assert opt(dag, "oneshot", 5).cost == 0

    def test_oneshot_forced_spill(self):
        # x feeds both sinks y and z; y needs (x, p, q); z needs (x, r, s).
        # R = 4: after computing y, the sink y occupies a slot while z's
        # computation needs x + r + s + z = 4 slots, forcing one store.
        dag = ComputationDAG(
            [("x", "y"), ("p", "y"), ("q", "y"), ("x", "z"), ("r", "z"), ("s", "z")]
        )
        assert opt(dag, "oneshot", 4).cost == 1
        # one more slot and the spill disappears
        assert opt(dag, "oneshot", 5).cost == 0
        # three sink-consumers of x: each earlier sink must be spilled
        dag2 = ComputationDAG(
            [
                ("x", "y"), ("p", "y"), ("q", "y"),
                ("x", "z"), ("r", "z"), ("s", "z"),
                ("x", "w"), ("t", "w"), ("u", "w"),
            ]
        )
        res = opt(dag2, "oneshot", 4)
        assert res.cost == 2  # two of the three sinks must be stored blue

    def test_compcost_charges_each_compute(self):
        res = opt(chain_dag(4), "compcost", 2)
        assert res.cost == Fraction(4, 100)

    def test_base_recomputation_beats_storing(self):
        # v is needed twice with a tight budget: base recomputes sources
        # for free where oneshot must pay transfers.
        dag = ComputationDAG(
            [("a", "t1"), ("b", "t1"), ("a", "t2"), ("c", "t2")]
        )
        base = opt(dag, "base", 3).cost
        oneshot = opt(dag, "oneshot", 3).cost
        assert base <= oneshot

    def test_empty_dag(self):
        res = opt(ComputationDAG(), "oneshot", 1)
        assert res.cost == 0 and len(res.schedule) == 0


class TestSolverContracts:
    def test_schedule_is_valid_and_priced_correctly(self):
        dag = pyramid_dag(2)
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=3)
        res = solve_optimal(inst)
        report = validate_schedule(inst, res.schedule)
        assert report.ok
        assert report.cost == res.cost

    def test_return_schedule_false_skips_reconstruction(self):
        res = opt(chain_dag(4), "oneshot", 2, return_schedule=False)
        assert res.schedule is None and res.length is None

    def test_budget_exhaustion_raises(self):
        with pytest.raises(BudgetExceededError):
            opt(pyramid_dag(3), "oneshot", 4, budget=10)

    def test_monotone_in_r(self):
        """More red pebbles never hurt: opt(R+1) <= opt(R)."""
        dag = pyramid_dag(2)
        costs = [opt(dag, "oneshot", R, return_schedule=False).cost for R in (3, 4, 5)]
        assert costs == sorted(costs, reverse=True)

    def test_r_decrement_bounded_by_2n(self):
        """Section 5: opt(R-1) <= opt(R) + 2n."""
        dag = pyramid_dag(2)
        n = dag.n_nodes
        c4 = opt(dag, "oneshot", 4, return_schedule=False).cost
        c3 = opt(dag, "oneshot", 3, return_schedule=False).cost
        assert c3 <= c4 + 2 * n

    @pytest.mark.parametrize("model", ["base", "oneshot", "nodel", "compcost"])
    def test_model_cost_orderings(self, model):
        """base <= compcost <= ... : base can mimic any other model's
        schedule modulo free deletes/computes, so its optimum is lowest."""
        dag = pyramid_dag(2)
        base_cost = opt(dag, "base", 3, return_schedule=False).cost
        other = opt(dag, model, 3, return_schedule=False).cost
        assert base_cost <= other

    def test_prune_delete_blue_cost_preserving(self):
        """The solver's 'never delete blue' prune must not change optima:
        compare against a literal-rules search via the unpruned move set."""
        import heapq
        import itertools

        from repro.core.state import PebblingState, apply_move, legal_moves

        dag = ComputationDAG([("a", "c"), ("b", "c")])
        inst = PebblingInstance(dag=dag, model="base", red_limit=3)
        # unpruned uniform-cost search
        start = PebblingState.initial()
        counter = itertools.count()
        frontier = [(Fraction(0), next(counter), start)]
        best = {start: Fraction(0)}
        answer = None
        while frontier:
            g, _, s = heapq.heappop(frontier)
            if g > best.get(s, g):
                continue
            if s.is_complete(dag):
                answer = g
                break
            for mv in legal_moves(s, dag, inst.costs, 3, prune_delete_blue=False):
                ns, c = apply_move(s, mv, dag, inst.costs, 3)
                ng = g + c
                if ns not in best or ng < best[ns]:
                    best[ns] = ng
                    heapq.heappush(frontier, (ng, next(counter), ns))
        assert answer == solve_optimal(inst, return_schedule=False).cost


class TestLemma1Lengths:
    """Lemma 1: optimal pebblings have O(Delta * n) steps in the
    oneshot/nodel/compcost models."""

    @pytest.mark.parametrize("model", ["oneshot", "nodel", "compcost"])
    def test_optimal_length_bounded(self, model):
        dag = pyramid_dag(2)
        res = opt(dag, model, 3)
        delta, n = dag.max_indegree, dag.n_nodes
        # Lemma 1's constant is (2*delta+1) transfers + n computes + n
        # deletes and change; use the explicit safe form.
        assert res.length <= (4 * delta + 4) * n


class TestDecision:
    def test_decision_threshold(self):
        dag = chain_dag(5)
        inst = PebblingInstance(dag=dag, model="nodel", red_limit=2)
        assert decide_pebbling(inst, 3)
        assert not decide_pebbling(inst, 2)

    def test_uses_instance_budget(self):
        dag = chain_dag(5)
        inst = PebblingInstance(dag=dag, model="nodel", red_limit=2, cost_budget=3)
        assert decide_pebbling(inst)

    def test_requires_some_budget(self):
        dag = chain_dag(3)
        inst = PebblingInstance(dag=dag, model="nodel", red_limit=2)
        with pytest.raises(ValueError):
            decide_pebbling(inst)


class TestAStar:
    def test_compcost_heuristic_admissible_and_agreeing(self):
        dag = pyramid_dag(2)
        inst = PebblingInstance(dag=dag, model="compcost", red_limit=3)
        plain = solve_optimal(inst, return_schedule=False)
        astar = solve_optimal(
            inst, heuristic=compcost_heuristic, return_schedule=False
        )
        assert plain.cost == astar.cost
        assert astar.expanded <= plain.expanded

    def test_heuristic_zero_at_goal_states(self):
        from repro.core.state import PebblingState

        dag = chain_dag(3)
        inst = PebblingInstance(dag=dag, model="compcost", red_limit=2)
        goal = PebblingState(
            frozenset(), frozenset({2}), frozenset({0, 1, 2})
        )
        assert compcost_heuristic(goal, inst) == 0
