"""Golden regression tests: pinned exact optima for classic instances.

The numbers below were produced by the legacy frozenset solver (the
pre-bitmask reference implementation) and hand-checked against the
paper's formulas where one exists (pyramids, the Figure 3/4 tradeoff
gadget, H2C).  Every entry is asserted against

* the bitmask kernel (``solve_optimal``, the default engine),
* the legacy reference (``solve_optimal_legacy``),
* iterative-deepening A* (``solve_optimal_idastar``),
* the batched numpy frontier engine (``engine="numpy"``), and
* the sharded parallel A* (``engine="par:2"``),

so any kernel bug — dominance pruning, cost scaling, successor
generation — shows up as a *value diff* against a committed constant, not
just as a cross-check failure that could in principle be a shared bug.

Costs are compared as exact :class:`fractions.Fraction` values parsed
from the pinned strings (byte-identical across engines by construction:
``Fraction.__eq__`` is exact).
"""

from fractions import Fraction

import pytest

from repro import PebblingInstance, validate_schedule
from repro.gadgets import h2c_dag
from repro.gadgets.tradeoff import tradeoff_dag
from repro.generators import (
    binary_tree_dag,
    chain_dag,
    grid_stencil_dag,
    pyramid_dag,
)
from repro.solvers import (
    solve_optimal,
    solve_optimal_idastar,
    solve_optimal_legacy,
)


def _h2c(r):
    dag, _ = h2c_dag(r)
    return dag


_FACTORIES = {
    "pyramid:2": lambda: pyramid_dag(2),
    "pyramid:3": lambda: pyramid_dag(3),
    "tree:4": lambda: binary_tree_dag(4),
    "chain:8": lambda: chain_dag(8),
    "grid:3x3": lambda: grid_stencil_dag(3, 3),
    "h2c:4": lambda: _h2c(4),
    "tradeoff:2x6": lambda: tradeoff_dag(2, 6).dag,
    "pyramid:4": lambda: pyramid_dag(4),
    "grid:4x4": lambda: grid_stencil_dag(4, 4),
}

#: (dag, model, red_limit, optimal cost) — regenerate with
#: solve_optimal_legacy; do NOT update casually: a changed value means a
#: solver regression until proven otherwise.
GOLDEN = [
    # the [GLT79] pyramid: gentle cost growth as R shrinks (Section 3)
    ("pyramid:2", "base", 3, "2"),
    ("pyramid:2", "oneshot", 3, "2"),
    ("pyramid:2", "nodel", 3, "5"),
    ("pyramid:2", "compcost", 3, "103/50"),
    ("pyramid:2", "base", 4, "0"),
    ("pyramid:2", "oneshot", 4, "0"),
    ("pyramid:2", "nodel", 4, "2"),
    ("pyramid:2", "compcost", 4, "3/50"),
    ("pyramid:2", "base", 5, "0"),
    ("pyramid:2", "oneshot", 5, "0"),
    ("pyramid:2", "nodel", 5, "1"),
    ("pyramid:2", "compcost", 5, "3/50"),
    ("pyramid:3", "oneshot", 3, "6"),
    ("pyramid:3", "oneshot", 4, "2"),
    ("pyramid:3", "nodel", 4, "8"),
    # reduction trees: free once R covers the spine
    ("tree:4", "oneshot", 3, "2"),
    ("tree:4", "oneshot", 4, "0"),
    # chains: nodel must store all but R of the required nodes
    ("chain:8", "nodel", 2, "6"),
    ("chain:8", "nodel", 3, "5"),
    ("chain:8", "oneshot", 2, "0"),
    # wavefront stencil
    ("grid:3x3", "oneshot", 3, "4"),
    # the Hong-Kung-hard H2C gadget of Figure 2: 4 transfers per guarded
    # node at R, halved with one spare slot (Section 3)
    ("h2c:4", "base", 4, "4"),
    ("h2c:4", "oneshot", 4, "4"),
    ("h2c:4", "nodel", 4, "8"),
    ("h2c:4", "compcost", 4, "102/25"),
    ("h2c:4", "oneshot", 5, "2"),
    # Figure 3/4 tradeoff gadget (d=2, n=6): 2(d-i)n exactly
    ("tradeoff:2x6", "oneshot", 4, "16"),
    ("tradeoff:2x6", "oneshot", 5, "8"),
    ("tradeoff:2x6", "oneshot", 6, "0"),
]

#: larger pinned optima: feasible in tier-1 time only for the batched
#: numpy engine (the scalar engines need multiple seconds each here;
#: values were cross-checked against ``engine="bits"`` offline).
GOLDEN_LARGE = [
    ("pyramid:4", "oneshot", 4, "4"),
    ("pyramid:4", "nodel", 5, "12"),
    ("grid:4x4", "oneshot", 4, "4"),
    ("grid:4x4", "nodel", 4, "16"),
]

_IDS = [f"{d}-{m}-R{r}" for d, m, r, _ in GOLDEN]
_LARGE_IDS = [f"{d}-{m}-R{r}" for d, m, r, _ in GOLDEN_LARGE]


@pytest.fixture(scope="module")
def dags():
    return {name: factory() for name, factory in _FACTORIES.items()}


@pytest.mark.parametrize("dag_name,model,red_limit,expected", GOLDEN, ids=_IDS)
class TestGoldenOptima:
    def test_bitmask_engine_matches_golden(
        self, dags, dag_name, model, red_limit, expected
    ):
        inst = PebblingInstance(
            dag=dags[dag_name], model=model, red_limit=red_limit
        )
        result = solve_optimal(inst)
        assert result.cost == Fraction(expected)
        # the reconstructed schedule must be independently auditable
        report = validate_schedule(inst, result.schedule)
        assert report.ok, report.violations[:3]
        assert report.cost == result.cost

    def test_legacy_engine_matches_golden(
        self, dags, dag_name, model, red_limit, expected
    ):
        inst = PebblingInstance(
            dag=dags[dag_name], model=model, red_limit=red_limit
        )
        cost = solve_optimal_legacy(inst, return_schedule=False).cost
        assert cost == Fraction(expected)

    def test_idastar_matches_golden(
        self, dags, dag_name, model, red_limit, expected
    ):
        inst = PebblingInstance(
            dag=dags[dag_name], model=model, red_limit=red_limit
        )
        cost = solve_optimal_idastar(
            inst, return_schedule=False, budget=20_000_000
        ).cost
        assert cost == Fraction(expected)

    def test_numpy_engine_matches_golden(
        self, dags, dag_name, model, red_limit, expected
    ):
        inst = PebblingInstance(
            dag=dags[dag_name], model=model, red_limit=red_limit
        )
        result = solve_optimal(inst, engine="numpy")
        assert result.cost == Fraction(expected)
        report = validate_schedule(inst, result.schedule)
        assert report.ok, report.violations[:3]
        assert report.cost == result.cost

    def test_parallel_engine_matches_golden(
        self, dags, dag_name, model, red_limit, expected
    ):
        inst = PebblingInstance(
            dag=dags[dag_name], model=model, red_limit=red_limit
        )
        # schedules are audited per engine in test_engine_differential;
        # here the point is the pinned value on every golden instance
        cost = solve_optimal(
            inst, engine="par:2", return_schedule=False
        ).cost
        assert cost == Fraction(expected)


@pytest.mark.parametrize(
    "dag_name,model,red_limit,expected", GOLDEN_LARGE, ids=_LARGE_IDS
)
def test_numpy_engine_matches_large_golden(
    dags, dag_name, model, red_limit, expected
):
    """The frontier-batching payoff: instances out of scalar tier-1 reach."""
    inst = PebblingInstance(
        dag=dags[dag_name], model=model, red_limit=red_limit
    )
    result = solve_optimal(inst, engine="numpy", budget=4_000_000)
    assert result.cost == Fraction(expected)
    report = validate_schedule(inst, result.schedule)
    assert report.ok, report.violations[:3]
    assert report.cost == result.cost
