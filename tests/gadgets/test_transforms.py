"""Tests for the Appendix C problem-definition transforms."""

import pytest

from repro import (
    ComputationDAG,
    Compute,
    PebblingInstance,
    PebblingSimulator,
    Schedule,
)
from repro.gadgets import add_super_source, finalize_sinks_blue
from repro.gadgets.transforms import lift_schedule_to_super_source
from repro.generators import pyramid_dag
from repro.solvers import solve_optimal


class TestSuperSource:
    def test_single_source(self):
        dag = add_super_source(pyramid_dag(2))
        assert dag.sources == {"s0"}

    def test_edge_to_every_original_node(self):
        base = pyramid_dag(2)
        dag = add_super_source(base)
        assert dag.outdegree("s0") == base.n_nodes

    def test_rejects_label_collision(self):
        dag = ComputationDAG(nodes=["s0"])
        with pytest.raises(ValueError):
            add_super_source(dag)

    def test_lifted_schedule_same_cost_with_extra_pebble(self):
        """Section 3: with R' = R+1 the transformed DAG behaves exactly as
        the original — the lifted optimal schedule has identical cost."""
        base = pyramid_dag(2)
        inst = PebblingInstance(dag=base, model="oneshot", red_limit=3)
        opt = solve_optimal(inst)

        lifted_dag = add_super_source(base)
        lifted_inst = PebblingInstance(
            dag=lifted_dag, model="oneshot", red_limit=4
        )
        lifted = lift_schedule_to_super_source(opt.schedule)
        res = PebblingSimulator(lifted_inst).run(lifted, require_complete=True)
        assert res.cost == opt.cost

    def test_lifted_optimum_not_worse(self):
        base = pyramid_dag(2)
        opt = solve_optimal(
            PebblingInstance(dag=base, model="oneshot", red_limit=3)
        ).cost
        lifted_opt = solve_optimal(
            PebblingInstance(
                dag=add_super_source(base), model="oneshot", red_limit=4
            ),
            return_schedule=False,
        ).cost
        assert lifted_opt <= opt


class TestBlueSinkFinalization:
    def test_appends_stores_for_red_sinks(self):
        dag = ComputationDAG(nodes=["x", "y"])
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=2)
        sched = Schedule([Compute("x"), Compute("y")])
        final = finalize_sinks_blue(inst, sched)
        res = PebblingSimulator(inst).run(final, require_complete=True)
        assert res.final_state.blue == {"x", "y"}
        # cost grows by exactly one store per red sink (Appendix C)
        assert res.cost == 2

    def test_no_op_when_sinks_already_blue(self):
        dag = ComputationDAG(nodes=["x"])
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=1)
        from repro import Store

        sched = Schedule([Compute("x"), Store("x")])
        final = finalize_sinks_blue(inst, sched)
        assert len(final) == len(sched)

    def test_requires_complete_input(self):
        dag = ComputationDAG(nodes=["x", "y"])
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=2)
        from repro import IncompletePebblingError

        with pytest.raises(IncompletePebblingError):
            finalize_sinks_blue(inst, Schedule([Compute("x")]))

    def test_extra_cost_bounded_by_sink_count(self):
        base = pyramid_dag(2)
        inst = PebblingInstance(dag=base, model="oneshot", red_limit=3)
        opt = solve_optimal(inst)
        final = finalize_sinks_blue(inst, opt.schedule)
        res = PebblingSimulator(inst).run(final, require_complete=True)
        assert res.cost <= opt.cost + len(base.sinks)
