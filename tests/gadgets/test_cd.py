"""Tests for the constant-degree gadget (Figure 1, Appendix B)."""

import pytest

from repro import PebblingInstance, PebblingSimulator
from repro.gadgets import cd_gadget_dag
from repro.gadgets.cd import free_cd_schedule
from repro.solvers import solve_optimal


class TestStructure:
    def test_counts(self):
        R, h = 4, 3
        dag, info = cd_gadget_dag(R, h)
        assert len(info.left) == R - 1
        assert len(info.chain) == h * (R - 1)
        # left + chain + 1 target
        assert dag.n_nodes == (R - 1) + h * (R - 1) + 1

    def test_indegree_at_most_two(self):
        dag, _ = cd_gadget_dag(5, 4)
        assert dag.max_indegree == 2

    def test_each_chain_node_uses_one_left_node(self):
        R, h = 4, 2
        dag, info = cd_gadget_dag(R, h)
        for idx, g in enumerate(info.chain):
            preds = set(dag.predecessors(g))
            assert info.left[idx % (R - 1)] in preds

    def test_chain_links(self):
        dag, info = cd_gadget_dag(4, 2)
        for prev, cur in zip(info.chain, info.chain[1:]):
            assert prev in dag.predecessors(cur)

    def test_exit_feeds_targets(self):
        dag, info = cd_gadget_dag(4, 2, n_targets=2)
        for t in range(2):
            assert dag.predecessors(("cd", "t", t)) == (info.exit,)

    def test_required_reds(self):
        _, info = cd_gadget_dag(6, 2)
        assert info.required_reds == 5 + 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            cd_gadget_dag(1, 3)
        with pytest.raises(ValueError):
            cd_gadget_dag(4, 0)


class TestPaperProperties:
    """Appendix B: free with |left|+2 reds; cost >= ~2h with one fewer."""

    def test_free_schedule_costs_zero_oneshot(self):
        dag, info = cd_gadget_dag(4, 5)
        inst = PebblingInstance(
            dag=dag, model="oneshot", red_limit=info.required_reds
        )
        sched = free_cd_schedule(info, include_targets=[("cd", "t", 0)])
        res = PebblingSimulator(inst).run(sched, require_complete=True)
        assert res.cost == 0
        assert res.max_red_in_use <= info.required_reds

    def test_one_fewer_red_pebble_costs_order_h(self):
        R, h = 3, 3
        dag, _ = cd_gadget_dag(R, h)
        # with R+1 = required reds: free
        opt_full = solve_optimal(
            PebblingInstance(dag=dag, model="oneshot", red_limit=R + 1)
        )
        assert opt_full.cost == 0
        # with R reds: at least ~2 per layer (the gadget's cliff)
        opt_less = solve_optimal(
            PebblingInstance(dag=dag, model="oneshot", red_limit=R)
        )
        assert opt_less.cost >= 2 * (h - 1)

    def test_cliff_grows_with_h(self):
        R = 3
        costs = []
        for h in (2, 4):
            dag, _ = cd_gadget_dag(R, h)
            costs.append(
                solve_optimal(
                    PebblingInstance(dag=dag, model="oneshot", red_limit=R)
                ).cost
            )
        assert costs[1] > costs[0]

    def test_contrast_with_pyramid(self):
        """Section 3: removing one red pebble from a pyramid costs only ~2,
        while the CD gadget's cost jumps by order h — the paper's reason
        for preferring the CD gadget."""
        from repro.generators import pyramid_dag

        pyr = pyramid_dag(3)
        full = solve_optimal(
            PebblingInstance(dag=pyr, model="oneshot", red_limit=5)
        ).cost
        less = solve_optimal(
            PebblingInstance(dag=pyr, model="oneshot", red_limit=4)
        ).cost
        pyramid_jump = less - full

        R, h = 3, 4
        cd, _ = cd_gadget_dag(R, h)
        cd_full = solve_optimal(
            PebblingInstance(dag=cd, model="oneshot", red_limit=R + 1)
        ).cost
        cd_less = solve_optimal(
            PebblingInstance(dag=cd, model="oneshot", red_limit=R)
        ).cost
        cd_jump = cd_less - cd_full
        assert cd_jump > pyramid_jump
