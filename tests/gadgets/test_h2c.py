"""Tests for the hard-to-compute gadget (Figure 2, Section 3)."""

import pytest

from repro import PebblingInstance
from repro.gadgets import attach_h2c, h2c_dag
from repro.generators import chain_dag
from repro.solvers import solve_optimal


class TestStructure:
    def test_standalone_layout(self):
        R = 5
        dag, info = h2c_dag(R)
        assert len(info.b_group) == R - 1
        assert len(info.starters[(("h2c", "v"))]) == 3
        # n = s + B + 3 starters + v
        assert dag.n_nodes == 1 + (R - 1) + 3 + 1

    def test_starters_consume_whole_b_group(self):
        dag, info = h2c_dag(4)
        for u in info.starters[("h2c", "v")]:
            assert set(dag.predecessors(u)) == set(info.b_group)

    def test_guarded_node_consumes_starters(self):
        dag, info = h2c_dag(4)
        assert set(dag.predecessors(("h2c", "v"))) == set(info.starters[("h2c", "v")])

    def test_b_group_fed_by_s(self):
        dag, info = h2c_dag(4)
        for b in info.b_group:
            assert dag.predecessors(b) == (info.s,)

    def test_rejects_tiny_r(self):
        with pytest.raises(ValueError):
            h2c_dag(3)  # guarded node has indegree 3, needs R >= 4

    def test_rejects_too_few_starters(self):
        with pytest.raises(ValueError):
            h2c_dag(6, n_starters=2)

    def test_custom_starter_count(self):
        dag, info = h2c_dag(6, n_starters=5)
        assert len(info.starters[("h2c", "v")]) == 5
        assert info.n_added_nodes == 1 + 5 + 5  # s + B + starters


class TestPaperProperties:
    """Section 3: 'computing v indirectly requires at least 4 transfer
    operations, and thus it now has a constant cost of 4'."""

    def test_oneshot_cost_is_exactly_four(self):
        dag, _ = h2c_dag(4)
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=4)
        assert solve_optimal(inst).cost == 4

    def test_base_cost_is_exactly_four(self):
        dag, _ = h2c_dag(4)
        inst = PebblingInstance(dag=dag, model="base", red_limit=4)
        assert solve_optimal(inst).cost == 4

    def test_extra_red_pebble_removes_the_cost(self):
        # with R+... enough pebbles the three starters stay red: no stores
        dag, _ = h2c_dag(4)
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=7)
        assert solve_optimal(inst).cost == 0


class TestAttachment:
    def test_shared_attachment_node_economy(self):
        # 'we add 3 extra nodes for every source of the DAG, and a further
        # R extra nodes to the DAG altogether' (R-1 group nodes plus s).
        base = chain_dag(4)
        R = 5
        dag, info = attach_h2c(base, R)
        assert dag.n_nodes == base.n_nodes + 3 * 1 + R  # one source in a chain

    def test_guarded_source_no_longer_source(self):
        base = chain_dag(3)
        dag, info = attach_h2c(base, 5)
        assert 0 not in dag.sources
        assert set(dag.predecessors(0)) == set(info.starters[0])

    def test_private_gadgets_are_disjoint(self):
        from repro.generators import independent_tasks_dag

        base = independent_tasks_dag(2, 0)  # two isolated task nodes
        dag, info = attach_h2c(base, 5, shared=False)
        # 2 sources * (1 s + 4 B + 3 starters) added
        assert dag.n_nodes == 2 + 2 * (1 + 4 + 3)

    def test_rejects_non_source_guard(self):
        base = chain_dag(3)
        with pytest.raises(ValueError):
            attach_h2c(base, 5, guard=[1])

    def test_rejects_unknown_guard(self):
        with pytest.raises(ValueError):
            attach_h2c(chain_dag(3), 5, guard=["nope"])

    def test_original_edges_preserved(self):
        base = chain_dag(3)
        dag, _ = attach_h2c(base, 5)
        assert (0, 1) in set(dag.edges()) and (1, 2) in set(dag.edges())
