"""Tests for the Section 5 tradeoff construction (Figures 3-4)."""

from fractions import Fraction

import pytest

from repro import Model, PebblingInstance, PebblingSimulator, validate_schedule
from repro.gadgets import (
    opt_tradeoff_formula,
    optimal_tradeoff_schedule,
    tradeoff_dag,
)
from repro.solvers import solve_optimal


class TestConstruction:
    def test_counts(self):
        td = tradeoff_dag(3, 10)
        assert td.dag.n_nodes == 2 * 3 + 10
        assert td.d == 3 and td.chain_length == 10

    def test_max_indegree_is_d_plus_one(self):
        td = tradeoff_dag(4, 6)
        assert td.dag.max_indegree == 5
        assert td.min_red == 6

    def test_chain_alternates_groups(self):
        td = tradeoff_dag(2, 4)
        dag = td.dag
        assert set(td.group_a) <= set(dag.predecessors(("c", 1)))
        assert set(td.group_b) <= set(dag.predecessors(("c", 2)))
        assert set(td.group_a) <= set(dag.predecessors(("c", 3)))

    def test_chain_is_linked(self):
        td = tradeoff_dag(2, 4)
        for j in range(2, 5):
            assert ("c", j - 1) in td.dag.predecessors(("c", j))

    def test_sink_is_chain_end(self):
        td = tradeoff_dag(2, 5)
        assert td.dag.sinks == {("c", 5)}

    def test_group_for_step(self):
        td = tradeoff_dag(2, 4)
        assert td.group_for_step(1) == td.group_a
        assert td.group_for_step(2) == td.group_b

    def test_h2c_variant_guards_control_groups(self):
        td = tradeoff_dag(2, 4, with_h2c=True)
        assert td.h2c is not None
        # control nodes are no longer sources
        for g in td.group_a + td.group_b:
            assert td.dag.predecessors(g)
        # d+3 starters per control node (Appendix A.1)
        assert len(td.h2c.starters[td.group_a[0]]) == 2 + 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            tradeoff_dag(0, 5)


class TestSchedules:
    @pytest.mark.parametrize("model", ["oneshot", "base", "nodel", "compcost"])
    @pytest.mark.parametrize("i", [0, 1, 2, 3])
    def test_schedule_is_valid_and_within_capacity(self, model, i):
        td = tradeoff_dag(3, 12)
        R = 3 + 2 + i
        sched = optimal_tradeoff_schedule(td, R, model)
        inst = PebblingInstance(dag=td.dag, model=model, red_limit=R)
        report = validate_schedule(inst, sched)
        assert report.ok, report.violations[:3]
        res = PebblingSimulator(inst).run(sched, require_complete=True)
        assert res.max_red_in_use <= R

    @pytest.mark.parametrize("i", [0, 1, 2, 3, 4])
    def test_oneshot_cost_matches_formula_up_to_boundary(self, i):
        d, n = 4, 25
        td = tradeoff_dag(d, n)
        R = d + 2 + i
        sched = optimal_tradeoff_schedule(td, R, "oneshot")
        inst = PebblingInstance(dag=td.dag, model="oneshot", red_limit=R)
        measured = PebblingSimulator(inst).run(sched, require_complete=True).cost
        formula = opt_tradeoff_formula(td, R, "oneshot")  # 2(d-i)n
        assert abs(measured - formula) <= 5 * d + 5
        assert measured <= formula

    def test_base_is_degenerate_zero(self):
        td = tradeoff_dag(3, 15)
        sched = optimal_tradeoff_schedule(td, 5, "base")
        inst = PebblingInstance(dag=td.dag, model="base", red_limit=5)
        assert PebblingSimulator(inst).run(sched, require_complete=True).cost == 0

    def test_oneshot_linear_decrease_with_r(self):
        """Figure 4: the optimum drops by ~2n per extra red pebble."""
        d, n = 4, 20
        td = tradeoff_dag(d, n)
        costs = []
        for i in range(d + 1):
            R = d + 2 + i
            inst = PebblingInstance(dag=td.dag, model="oneshot", red_limit=R)
            sched = optimal_tradeoff_schedule(td, R, "oneshot")
            costs.append(PebblingSimulator(inst).run(sched).cost)
        drops = [costs[k] - costs[k + 1] for k in range(d)]
        assert costs[-1] == 0
        for drop in drops:
            assert 2 * n - 10 <= drop <= 2 * n

    def test_exact_solver_confirms_schedule_optimality_small(self):
        """On a tiny instance the emitted schedule must match the exact
        optimum, confirming the strategy is optimal (not just feasible)."""
        d, n = 2, 4
        td = tradeoff_dag(d, n)
        for i in range(d + 1):
            R = d + 2 + i
            inst = PebblingInstance(dag=td.dag, model="oneshot", red_limit=R)
            opt = solve_optimal(inst, return_schedule=False)
            sched_cost = PebblingSimulator(inst).run(
                optimal_tradeoff_schedule(td, R, "oneshot"), require_complete=True
            ).cost
            assert opt.cost == sched_cost

    def test_nodel_offset(self):
        """nodel pays an extra store per chain node (the +n offset of
        Appendix A.1, on the plain DAG with recomputable sources)."""
        d, n = 3, 12
        td = tradeoff_dag(d, n)
        R = d + 2
        one = PebblingSimulator(
            PebblingInstance(dag=td.dag, model="nodel", red_limit=R)
        ).run(optimal_tradeoff_schedule(td, R, "nodel"), require_complete=True)
        formula = opt_tradeoff_formula(td, R, "nodel")
        assert abs(one.cost - formula) <= 2 * d + 2

    def test_compcost_pays_epsilon_per_compute(self):
        d, n = 2, 8
        td = tradeoff_dag(d, n)
        R = d + 2
        inst = PebblingInstance(dag=td.dag, model="compcost", red_limit=R)
        res = PebblingSimulator(inst).run(
            optimal_tradeoff_schedule(td, R, "compcost"), require_complete=True
        )
        assert res.transfer_cost == 0  # pure recomputation strategy
        assert res.cost == Fraction(1, 100) * res.breakdown.computes

    def test_formula_rejects_infeasible_r(self):
        td = tradeoff_dag(3, 5)
        with pytest.raises(ValueError):
            opt_tradeoff_formula(td, 4, "oneshot")

    def test_schedule_rejects_h2c_variant(self):
        td = tradeoff_dag(2, 4, with_h2c=True)
        with pytest.raises(ValueError):
            optimal_tradeoff_schedule(td, 4, "oneshot")
