"""Tests for the online pebbler and fixed-order scheduling."""

import pytest

from repro import ComputationDAG, PebblingInstance, PebblingSimulator, validate_schedule
from repro.generators import (
    butterfly_dag,
    chain_dag,
    grid_stencil_dag,
    layered_random_dag,
    pyramid_dag,
)
from repro.heuristics import (
    FurthestNextUse,
    LeastRecentlyUsed,
    MinRemainingUses,
    OnlinePebbler,
    PebblerError,
    RandomEviction,
    fixed_order_schedule,
)
from repro.solvers import solve_optimal, upper_bound_naive


ALL_MODELS = ["base", "oneshot", "nodel", "compcost"]


def make(dag, model="oneshot", R=4):
    return PebblingInstance(dag=dag, model=model, red_limit=R)


class TestFixedOrderSchedule:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_valid_and_complete_on_pyramid(self, model):
        inst = make(pyramid_dag(3), model, R=3)
        sched = fixed_order_schedule(inst)
        report = validate_schedule(inst, sched)
        assert report.ok, report.violations[:3]

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_respects_capacity(self, model):
        inst = make(grid_stencil_dag(4, 4), model, R=3)
        res = PebblingSimulator(inst).run(
            fixed_order_schedule(inst), require_complete=True
        )
        assert res.max_red_in_use <= 3

    def test_within_naive_upper_bound(self):
        dag = butterfly_dag(3)
        inst = make(dag, "oneshot", R=4)
        cost = PebblingSimulator(inst).run(
            fixed_order_schedule(inst), require_complete=True
        ).cost
        assert cost <= upper_bound_naive(dag, "oneshot")

    def test_chain_with_two_pebbles_is_free(self):
        inst = make(chain_dag(20), "oneshot", R=2)
        cost = PebblingSimulator(inst).run(
            fixed_order_schedule(inst), require_complete=True
        ).cost
        assert cost == 0

    def test_custom_order_used(self):
        dag = ComputationDAG(nodes=["x", "y"])
        inst = make(dag, "oneshot", R=2)
        sched = fixed_order_schedule(inst, order=["y", "x"])
        computes = [m.node for m in sched]
        assert computes.index("y") < computes.index("x")

    def test_rejects_partial_order(self):
        inst = make(chain_dag(3), "oneshot", R=2)
        with pytest.raises(ValueError):
            fixed_order_schedule(inst, order=[0, 1])

    def test_belady_beats_lru_on_adversarial_reuse(self):
        """Classic caching gap: a value reused far in the future should be
        kept by Belady and evicted by LRU only when optimal."""
        # hub is used by every task; R leaves one spare slot.
        edges = []
        for t in range(6):
            edges.append(("hub", ("t", t)))
            edges.append((("x", t), ("t", t)))
            edges.append((("y", t), ("t", t)))
        dag = ComputationDAG(edges)
        inst = make(dag, "oneshot", R=4)
        belady = PebblingSimulator(inst).run(
            fixed_order_schedule(inst, eviction=FurthestNextUse()),
            require_complete=True,
        ).cost
        lru = PebblingSimulator(inst).run(
            fixed_order_schedule(inst, eviction=LeastRecentlyUsed()),
            require_complete=True,
        ).cost
        assert belady <= lru

    def test_matches_exact_optimum_on_chain_family(self):
        # On trees/chains with the natural order, Belady fixed-order
        # scheduling is optimal.
        inst = make(chain_dag(8), "nodel", R=2)
        fixed = PebblingSimulator(inst).run(
            fixed_order_schedule(inst), require_complete=True
        ).cost
        assert fixed == solve_optimal(inst, return_schedule=False).cost


class TestOnlinePebbler:
    def test_ready_nodes_initially_sources(self):
        dag = pyramid_dag(2)
        pebbler = OnlinePebbler(make(dag, R=3))
        assert set(pebbler.ready_nodes()) == dag.sources

    def test_compute_next_updates_ready(self):
        dag = ComputationDAG([("a", "c"), ("b", "c")])
        pebbler = OnlinePebbler(make(dag, R=3))
        pebbler.compute_next("a")
        assert "c" not in pebbler.ready_nodes()
        pebbler.compute_next("b")
        assert "c" in pebbler.ready_nodes()

    def test_rejects_recompute(self):
        pebbler = OnlinePebbler(make(chain_dag(3), R=2))
        pebbler.compute_next(0)
        with pytest.raises(PebblerError):
            pebbler.compute_next(0)

    def test_rejects_premature_compute(self):
        pebbler = OnlinePebbler(make(chain_dag(3), R=2))
        with pytest.raises(PebblerError):
            pebbler.compute_next(2)

    def test_rejects_oversized_indegree(self):
        dag = ComputationDAG([("a", "t"), ("b", "t"), ("c", "t")])
        pebbler = OnlinePebbler(PebblingInstance(dag=dag, model="oneshot", red_limit=4))
        # artificially lower the limit to simulate a driver bug
        pebbler.red_limit = 3
        pebbler.compute_next("a")
        pebbler.compute_next("b")
        pebbler.compute_next("c")
        with pytest.raises(PebblerError):
            pebbler.compute_next("t")

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_run_order_produces_valid_schedules_random(self, model):
        for seed in (0, 1):
            dag = layered_random_dag([4, 4, 3, 2], indegree=2, seed=seed)
            inst = make(dag, model, R=3)
            pebbler = OnlinePebbler(inst)
            sched = pebbler.run_order(dag.topological_order())
            report = validate_schedule(inst, sched)
            assert report.ok, report.violations[:3]

    def test_oneshot_never_loses_live_values(self):
        """The invariant behind the pebbler: live non-recomputable values
        keep a pebble; stress with a tiny R on a wide reuse pattern."""
        dag = grid_stencil_dag(5, 5)
        inst = make(dag, "oneshot", R=3)
        pebbler = OnlinePebbler(inst)
        sched = pebbler.run_order(dag.topological_order())  # must not raise
        assert validate_schedule(inst, sched).ok

    def test_random_eviction_deterministic_per_seed(self):
        dag = grid_stencil_dag(4, 4)
        inst = make(dag, "oneshot", R=3)
        s1 = OnlinePebbler(inst, eviction=RandomEviction(5)).run_order(
            dag.topological_order()
        )
        s2 = OnlinePebbler(inst, eviction=RandomEviction(5)).run_order(
            dag.topological_order()
        )
        assert s1 == s2

    def test_min_remaining_uses_policy_runs(self):
        dag = butterfly_dag(2)
        inst = make(dag, "oneshot", R=4)
        sched = OnlinePebbler(inst, eviction=MinRemainingUses()).run_order(
            dag.topological_order()
        )
        assert validate_schedule(inst, sched).ok
