"""Tests for the beam-search pebbler."""

import pytest

from repro import PebblingInstance, validate_schedule
from repro.generators import (
    chain_dag,
    grid_stencil_dag,
    layered_random_dag,
    pyramid_dag,
)
from repro.heuristics import beam_search_pebble, greedy_pebble
from repro.solvers import solve_optimal


def make(dag, R, model="oneshot"):
    return PebblingInstance(dag=dag, model=model, red_limit=R)


class TestBeamSearch:
    def test_schedule_valid_and_priced(self):
        inst = make(pyramid_dag(3), 3)
        res = beam_search_pebble(inst, beam_width=8)
        report = validate_schedule(inst, res.schedule)
        assert report.ok
        assert report.cost == res.cost

    def test_order_is_complete_permutation(self):
        dag = grid_stencil_dag(3, 3)
        res = beam_search_pebble(make(dag, 3), beam_width=4)
        assert sorted(res.order, key=repr) == sorted(dag.nodes, key=repr)

    def test_never_beats_exact_optimum(self):
        for seed in (0, 1):
            dag = layered_random_dag([3, 3, 2], indegree=2, seed=seed)
            inst = make(dag, 3)
            opt = solve_optimal(inst, return_schedule=False).cost
            assert beam_search_pebble(inst, beam_width=8).cost >= opt

    def test_wide_beam_reaches_optimum_on_pyramid(self):
        inst = make(pyramid_dag(3), 3)
        opt = solve_optimal(inst, return_schedule=False).cost
        assert beam_search_pebble(inst, beam_width=16).cost == opt

    def test_wide_beam_reaches_optimum_on_grid(self):
        inst = make(grid_stencil_dag(4, 4), 3)
        opt = solve_optimal(inst, return_schedule=False).cost
        assert beam_search_pebble(inst, beam_width=16).cost == opt

    def test_wider_beams_never_hurt_on_test_family(self):
        inst = make(grid_stencil_dag(4, 4), 3)
        costs = [
            beam_search_pebble(inst, beam_width=w).cost for w in (1, 4, 16)
        ]
        assert costs[2] <= costs[1] <= costs[0]

    def test_deterministic(self):
        inst = make(grid_stencil_dag(3, 4), 3)
        a = beam_search_pebble(inst, beam_width=4)
        b = beam_search_pebble(inst, beam_width=4)
        assert a.order == b.order and a.cost == b.cost

    def test_chain_free(self):
        inst = make(chain_dag(12), 2)
        assert beam_search_pebble(inst, beam_width=2).cost == 0

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            beam_search_pebble(make(chain_dag(3), 2), beam_width=0)

    @pytest.mark.parametrize("model", ["base", "nodel", "compcost"])
    def test_other_models_supported(self, model):
        inst = make(pyramid_dag(2), 3, model)
        res = beam_search_pebble(inst, beam_width=4)
        assert validate_schedule(inst, res.schedule).ok

    def test_expansion_count_reported(self):
        res = beam_search_pebble(make(pyramid_dag(2), 3), beam_width=2)
        assert res.expanded >= pyramid_dag(2).n_nodes


class TestCloning:
    def test_clone_is_independent(self):
        from repro.heuristics import OnlinePebbler

        inst = make(chain_dag(4), 2)
        a = OnlinePebbler(inst)
        a.compute_next(0)
        b = a.clone()
        b.compute_next(1)
        assert 1 in b.computed and 1 not in a.computed
        assert len(b.moves) == len(a.moves) + 1
