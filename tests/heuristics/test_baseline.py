"""Tests for the (2*Delta+1)*n naive baseline (Section 3)."""

import pytest

from repro import PebblingInstance, PebblingSimulator, validate_schedule
from repro.generators import (
    butterfly_dag,
    chain_dag,
    grid_stencil_dag,
    layered_random_dag,
    pyramid_dag,
)
from repro.heuristics import topological_schedule
from repro.solvers import upper_bound_naive


ALL_MODELS = ["base", "oneshot", "nodel", "compcost"]


class TestBaseline:
    @pytest.mark.parametrize("model", ALL_MODELS)
    @pytest.mark.parametrize(
        "dag_factory",
        [
            lambda: pyramid_dag(3),
            lambda: chain_dag(8),
            lambda: grid_stencil_dag(3, 4),
            lambda: butterfly_dag(2),
        ],
    )
    def test_valid_complete_and_within_bound(self, model, dag_factory):
        dag = dag_factory()
        inst = PebblingInstance(
            dag=dag, model=model, red_limit=dag.min_red_pebbles
        )
        sched = topological_schedule(inst)
        report = validate_schedule(inst, sched)
        assert report.ok, report.violations[:3]
        assert report.cost <= upper_bound_naive(dag, model)

    def test_works_at_minimum_red_limit(self):
        dag = pyramid_dag(4)
        inst = PebblingInstance(dag=dag, model="nodel", red_limit=3)
        res = PebblingSimulator(inst).run(
            topological_schedule(inst), require_complete=True
        )
        assert res.max_red_in_use <= 3

    def test_never_deletes(self):
        """The baseline must be nodel-safe by construction."""
        from repro import Delete

        dag = grid_stencil_dag(3, 3)
        inst = PebblingInstance(dag=dag, model="nodel", red_limit=3)
        assert topological_schedule(inst).count(Delete) == 0

    def test_cost_is_2indeg_plus_1_per_node(self):
        # exact accounting: sum over nodes of (2*indegree + 1)
        dag = pyramid_dag(2)
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=3)
        cost = PebblingSimulator(inst).run(
            topological_schedule(inst), require_complete=True
        ).cost
        expected = sum(2 * dag.indegree(v) + 1 for v in dag)
        assert cost == expected

    def test_custom_order(self):
        dag = layered_random_dag([3, 3], indegree=2, seed=0)
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=3)
        sched = topological_schedule(inst, order=dag.topological_order())
        assert validate_schedule(inst, sched).ok

    def test_rejects_non_topological_order(self):
        dag = chain_dag(3)
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=2)
        with pytest.raises(ValueError):
            topological_schedule(inst, order=[2, 1, 0])

    def test_rejects_insufficient_r(self):
        dag = pyramid_dag(2)
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=3)
        inst2 = inst.with_red_limit(3)
        # sneak an instance whose R is below indegree+1 via direct call
        from repro.heuristics.baseline import topological_schedule as ts

        class Fake:
            dag = inst.dag
            red_limit = 2

        with pytest.raises(ValueError):
            ts(Fake())
