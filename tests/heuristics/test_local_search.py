"""Tests for local search over computation orders."""

import pytest

from repro import PebblingInstance, PebblingSimulator, validate_schedule
from repro.generators import grid_stencil_dag, layered_random_dag, pyramid_dag
from repro.heuristics import fixed_order_schedule, greedy_pebble
from repro.heuristics.local_search import improve_order
from repro.solvers import solve_optimal


def make(dag, R):
    return PebblingInstance(dag=dag, model="oneshot", red_limit=R)


class TestImproveOrder:
    def test_never_worse_than_start(self):
        inst = make(grid_stencil_dag(4, 4), 3)
        result = improve_order(inst, max_evaluations=200)
        assert result.cost <= result.initial_cost

    def test_result_schedule_valid_and_priced(self):
        inst = make(pyramid_dag(3), 3)
        result = improve_order(inst, max_evaluations=100)
        report = validate_schedule(inst, result.schedule)
        assert report.ok
        assert report.cost == result.cost

    def test_order_stays_topological(self):
        inst = make(layered_random_dag([3, 3, 3], indegree=2, seed=4), 3)
        result = improve_order(inst, max_evaluations=150, seed=3)
        pos = {v: i for i, v in enumerate(result.order)}
        for u, v in inst.dag.edges():
            assert pos[u] < pos[v]

    def test_reinsert_neighborhood(self):
        inst = make(grid_stencil_dag(3, 4), 3)
        result = improve_order(
            inst, neighborhood="reinsert", max_evaluations=200, seed=1
        )
        assert result.cost <= result.initial_cost
        assert validate_schedule(inst, result.schedule).ok

    def test_rejects_unknown_neighborhood(self):
        inst = make(pyramid_dag(2), 3)
        with pytest.raises(ValueError):
            improve_order(inst, neighborhood="teleport")

    def test_rejects_non_topological_start(self):
        from repro.generators import chain_dag

        inst = make(chain_dag(3), 2)
        with pytest.raises(ValueError):
            improve_order(inst, order=[2, 1, 0])

    def test_rejects_partial_order(self):
        from repro.generators import chain_dag

        inst = make(chain_dag(3), 2)
        with pytest.raises(ValueError):
            improve_order(inst, order=[0, 1])

    def test_evaluation_budget_respected(self):
        inst = make(grid_stencil_dag(4, 4), 3)
        result = improve_order(inst, max_evaluations=10)
        assert result.evaluations <= 10

    def test_can_repair_a_bad_greedy_order(self):
        """Start from a deliberately poor order and verify the search
        recovers at least part of the gap to the optimum."""
        dag = pyramid_dag(3)
        inst = make(dag, 3)
        greedy = greedy_pebble(inst)
        improved = improve_order(
            inst, order=greedy.order, max_evaluations=500, seed=2
        )
        opt = solve_optimal(inst, return_schedule=False).cost
        assert opt <= improved.cost <= greedy.cost

    def test_deterministic_per_seed(self):
        inst = make(grid_stencil_dag(4, 4), 3)
        a = improve_order(inst, max_evaluations=120, seed=9)
        b = improve_order(inst, max_evaluations=120, seed=9)
        assert a.order == b.order and a.cost == b.cost


class TestValidationAndNeighborhoodRegressions:
    def test_equal_repr_distinct_nodes_not_a_permutation(self):
        """Regression: the starting-order check used to compare node
        *reprs*, so a list repeating one of two equal-repr nodes passed
        as a 'permutation'."""

        class Twin:
            def __repr__(self):
                return "<twin>"

        from repro import ComputationDAG

        a, b = Twin(), Twin()
        dag = ComputationDAG(nodes=[a, b])
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=2)
        with pytest.raises(ValueError):
            improve_order(inst, order=[a, a])
        # the genuine permutation is accepted and searchable
        result = improve_order(inst, order=[a, b], max_evaluations=10)
        assert sorted(result.order, key=id) == sorted([a, b], key=id)

    def test_reinsert_single_node_dag(self):
        from repro import ComputationDAG

        dag = ComputationDAG(nodes=["x"])
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=1)
        result = improve_order(inst, neighborhood="reinsert", max_evaluations=10)
        assert result.evaluations == 1  # nothing to move

    def test_reinsert_never_burns_attempts_on_identity(self):
        """Regression: i == j draws used to consume a neighborhood
        attempt on a no-op candidate.  With two independent nodes every
        draw now yields the one genuine alternative order, so the
        stalled round performs exactly n real evaluations."""
        from repro import ComputationDAG

        inst = make(ComputationDAG(nodes=["a", "b"]), 2)
        for seed in range(5):
            result = improve_order(
                inst, neighborhood="reinsert", max_evaluations=100, seed=seed
            )
            assert result.evaluations == 3  # 1 initial + 2 genuine candidates
