"""Tests for the Section 8 greedy rules."""

import pytest

from repro import ComputationDAG, PebblingInstance, validate_schedule
from repro.generators import (
    independent_tasks_dag,
    layered_random_dag,
    pyramid_dag,
)
from repro.heuristics import GreedyRule, greedy_pebble
from repro.solvers import solve_optimal, upper_bound_naive


ALL_RULES = list(GreedyRule)


def make(dag, model="oneshot", R=4):
    return PebblingInstance(dag=dag, model=model, red_limit=R)


class TestGreedyBasics:
    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_produces_valid_complete_schedule(self, rule):
        inst = make(pyramid_dag(3), R=3)
        result = greedy_pebble(inst, rule)
        report = validate_schedule(inst, result.schedule)
        assert report.ok, report.violations[:3]
        assert report.cost == result.cost

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_computes_every_node_once(self, rule):
        dag = pyramid_dag(2)
        result = greedy_pebble(make(dag, R=3), rule)
        assert sorted(result.order, key=repr) == sorted(dag.nodes, key=repr)

    def test_rule_accepts_string(self):
        inst = make(pyramid_dag(2), R=3)
        result = greedy_pebble(inst, "most-red-inputs")
        assert result.rule is GreedyRule.MOST_RED_INPUTS

    @pytest.mark.parametrize("model", ["base", "oneshot", "nodel", "compcost"])
    def test_all_models_supported(self, model):
        inst = make(pyramid_dag(2), model, R=3)
        result = greedy_pebble(inst)
        assert validate_schedule(inst, result.schedule).ok

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_within_naive_upper_bound(self, rule):
        dag = layered_random_dag([4, 4, 3], indegree=2, seed=3)
        inst = make(dag, R=3)
        result = greedy_pebble(inst, rule)
        assert result.cost <= upper_bound_naive(dag, "oneshot")

    def test_order_is_topological(self):
        dag = layered_random_dag([3, 3, 3], indegree=2, seed=1)
        result = greedy_pebble(make(dag, R=3))
        pos = {v: i for i, v in enumerate(result.order)}
        for u, v in dag.edges():
            assert pos[u] < pos[v]


class TestPaperProperties:
    def test_red_rules_coincide_on_uniform_indegree(self):
        """Section 8: with uniform (non-source) indegree k, 'most red
        inputs' and 'red ratio' are the same ordering (ratio = red / k)."""
        dag = independent_tasks_dag(4, 3)
        inst = make(dag, R=4)
        a = greedy_pebble(inst, GreedyRule.MOST_RED_INPUTS)
        b = greedy_pebble(inst, GreedyRule.RED_RATIO)
        assert a.order == b.order and a.cost == b.cost

    def test_all_rules_free_without_pressure(self):
        """With R large enough that nothing is ever stored, every rule
        pebbles for free (they may order ties differently, but no rule can
        be misled into paying transfers)."""
        dag = independent_tasks_dag(3, 3)
        inst = make(dag, R=dag.n_nodes + 1)
        assert all(greedy_pebble(inst, r).cost == 0 for r in ALL_RULES)

    def test_greedy_prefers_partially_red_groups(self):
        """With red pebbles on its inputs, a target must win against
        fresh groups (the mechanism the Theorem 4 misguidance exploits)."""
        # two tasks; task 0's inputs get computed first by tie-breaking,
        # then greedy must finish task 0 before starting task 1's inputs.
        dag = independent_tasks_dag(2, 2)
        inst = make(dag, R=3)
        result = greedy_pebble(inst, GreedyRule.MOST_RED_INPUTS)
        order = list(result.order)
        t0 = order.index(("task", 0))
        t1 = order.index(("task", 1))
        first_task = min(t0, t1)
        # the first task computed must appear before any input of the other
        later_task = ("task", 1) if first_task == t0 else ("task", 0)
        later_inputs = [order.index(("in", later_task[1], i)) for i in range(2)]
        assert all(first_task < i for i in later_inputs)

    def test_greedy_can_be_suboptimal(self):
        """The paper's whole point: greedy != optimal.  A small instance
        where following the reddest target first forces extra spills."""
        # shared hub 'h' plus two targets with disjoint big input sets
        dag = ComputationDAG(
            [
                ("h", "t1"), ("a", "t1"), ("b", "t1"),
                ("h", "t2"), ("c", "t2"), ("d", "t2"),
                ("t1", "s"), ("t2", "s"),
            ]
        )
        inst = make(dag, R=4)
        greedy_cost = greedy_pebble(inst).cost
        opt_cost = solve_optimal(inst, return_schedule=False).cost
        assert greedy_cost >= opt_cost

    def test_greedy_optimal_on_chain(self):
        from repro.generators import chain_dag

        inst = make(chain_dag(10), R=2)
        assert greedy_pebble(inst).cost == 0
