"""Differential tests: the multi-level mask engine vs the frozenset referee.

Hypothesis generates random DAGs, random hierarchies (depth, capacities,
transfer costs, compute cost) and random move walks, and every property
asserts that :mod:`repro.multilevel.bitgame` and the legacy
:meth:`MultilevelSimulator.step` agree on

* move legality (same legal-move sets, same rejection messages),
* resulting states (decode(mask step) == legacy step, round-trips),
* costs (exact Fractions),
* the ``run`` fast path (same totals/peaks as stepping one-by-one).
"""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import ComputationDAG, IllegalMoveError
from repro.core.bitstate import bit_layout
from repro.multilevel import (
    HierarchySpec,
    MLCompute,
    MLDelete,
    MLMove,
    MultilevelInstance,
    MultilevelSimulator,
    apply_ml_move_bits,
    decode_ml_state,
    encode_ml_state,
    initial_ml_state,
    legal_ml_moves_bits,
)

DIFF_SETTINGS = dict(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def scenarios(draw):
    """A random (dag, hierarchy) pair small enough to walk exhaustively."""
    n = draw(st.integers(min_value=1, max_value=6))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = []
    indeg = [0] * n
    for (u, v) in pairs:
        if indeg[v] < 2 and draw(st.booleans()):
            chosen.append((u, v))
            indeg[v] += 1
    dag = ComputationDAG(edges=chosen, nodes=range(n))
    levels = draw(st.integers(min_value=2, max_value=4))
    caps = [dag.max_indegree + 1 + draw(st.integers(0, 2))]
    for _ in range(levels - 2):
        caps.append(draw(st.integers(1, 4)))
    caps.append(None)
    costs = [
        Fraction(draw(st.sampled_from([0, 1, 2, "1/2", "3/2"])))
        for _ in range(levels - 1)
    ]
    compute = Fraction(draw(st.sampled_from([0, 0, "1/100"])))
    spec = HierarchySpec(
        capacities=tuple(caps), transfer_costs=tuple(costs), compute_cost=compute
    )
    return MultilevelInstance(dag=dag, spec=spec)


def candidate_moves(instance):
    """Every conceivable move, legal or not (incl. a node outside the DAG)."""
    nodes = list(instance.dag.nodes) + ["not-in-dag"]
    out = []
    for v in nodes:
        out.append(MLCompute(v))
        out.append(MLDelete(v))
        for to in range(-1, instance.spec.levels + 1):
            out.append(MLMove(v, to))
    return out


def reference_legal(sim, state):
    """Brute-force legality via the frozenset referee."""
    legal = []
    for move in candidate_moves(sim.instance):
        try:
            sim.step(state, move)
        except IllegalMoveError:
            continue
        legal.append(move)
    return legal


def walk(data, instance, steps):
    """Random-walk both engines in lockstep, asserting agreement throughout.

    Returns the list of (legacy_state, masks) pairs visited.
    """
    sim = MultilevelSimulator(instance)
    layout = bit_layout(instance.dag)
    spec = instance.spec
    state = sim.initial_state()
    masks = initial_ml_state(spec.levels)
    visited = [(state, masks)]
    for _ in range(steps):
        legal = sorted(reference_legal(sim, state), key=repr)
        legal_b = sorted(legal_ml_moves_bits(layout, spec, masks), key=repr)
        assert legal == legal_b, "legal-move sets diverge"
        if not legal:
            break
        move = legal[data.draw(st.integers(0, len(legal) - 1), label="move")]
        state, cost = sim.step(state, move)
        masks, cost_b = apply_ml_move_bits(layout, spec, masks, move)
        assert cost == cost_b, f"cost diverges on {move}"
        visited.append((state, masks))
    return visited


class TestWalkAgreement:
    @settings(**DIFF_SETTINGS)
    @given(instance=scenarios(), data=st.data())
    def test_states_costs_and_legality_agree(self, instance, data):
        layout = bit_layout(instance.dag)
        for state, masks in walk(data, instance, steps=12):
            assert decode_ml_state(layout, masks) == state
            assert encode_ml_state(layout, state) == masks
            # the masks stay pairwise disjoint (one level per value)
            seen = 0
            for m in masks:
                assert seen & m == 0
                seen |= m


class TestIllegalMoveAgreement:
    @settings(**DIFF_SETTINGS)
    @given(instance=scenarios(), data=st.data())
    def test_arbitrary_moves_accepted_or_rejected_identically(self, instance, data):
        sim = MultilevelSimulator(instance)
        layout = bit_layout(instance.dag)
        spec = instance.spec
        state, masks = walk(data, instance, steps=8)[-1]
        moves = candidate_moves(instance)
        for _ in range(10):
            move = moves[data.draw(st.integers(0, len(moves) - 1), label="try")]
            legacy_outcome = bit_outcome = None
            legacy_msg = bit_msg = None
            try:
                legacy_outcome = sim.step(state, move)
            except IllegalMoveError as err:
                legacy_msg = str(err)
            try:
                bit_outcome = apply_ml_move_bits(layout, spec, masks, move)
            except IllegalMoveError as err:
                bit_msg = str(err)
            assert (legacy_outcome is None) == (bit_outcome is None)
            if legacy_outcome is None:
                assert legacy_msg == bit_msg, "error messages diverge"
            else:
                new_state, cost = legacy_outcome
                new_masks, cost_b = bit_outcome
                assert cost == cost_b
                assert decode_ml_state(layout, new_masks) == new_state


class TestRunFastPath:
    @settings(**DIFF_SETTINGS)
    @given(instance=scenarios(), data=st.data())
    def test_run_matches_stepping(self, instance, data):
        sim = MultilevelSimulator(instance)
        schedule = []
        state = sim.initial_state()
        total = Fraction(0)
        peak = [0] * instance.spec.levels
        for _ in range(12):
            legal = sorted(reference_legal(sim, state), key=repr)
            if not legal:
                break
            move = legal[data.draw(st.integers(0, len(legal) - 1), label="move")]
            schedule.append(move)
            state, cost = sim.step(state, move)
            total += cost
            for i, s in enumerate(state.levels):
                peak[i] = max(peak[i], len(s))
        result = sim.run(schedule)
        assert result.cost == total
        assert result.final_state == state
        assert result.steps == len(schedule)
        assert result.peak_usage == tuple(peak)
        assert result.complete == sim.is_complete(state)
