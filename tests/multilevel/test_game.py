"""Tests for the multi-level memory hierarchy generalisation."""

from fractions import Fraction

import pytest

from repro import ComputationDAG, IllegalMoveError, IncompletePebblingError
from repro.generators import chain_dag, grid_stencil_dag, pyramid_dag
from repro.multilevel import (
    HierarchySpec,
    MLCompute,
    MLDelete,
    MLMove,
    MultilevelInstance,
    MultilevelSimulator,
    MultilevelState,
    multilevel_topological_schedule,
    two_level_equivalent,
)


def spec3(fast=3):
    return HierarchySpec(
        capacities=(fast, 2 * fast, None),
        transfer_costs=(Fraction(1), Fraction(10)),
    )


def make(dag, spec=None):
    return MultilevelInstance(dag=dag, spec=spec or spec3())


class TestHierarchySpec:
    def test_levels(self):
        assert spec3().levels == 3

    def test_uniform_factory(self):
        s = HierarchySpec.uniform(4, 2, geometric=2)
        assert s.capacities == (2, 4, 8, None)
        assert s.transfer_costs == (1, 1, 1)

    def test_needs_two_levels(self):
        with pytest.raises(ValueError):
            HierarchySpec(capacities=(3,), transfer_costs=())

    def test_cost_vector_length_checked(self):
        with pytest.raises(ValueError):
            HierarchySpec(capacities=(3, None), transfer_costs=(1, 1))

    def test_bounded_fast_levels_required(self):
        with pytest.raises(ValueError):
            HierarchySpec(capacities=(None, None), transfer_costs=(1,))

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            HierarchySpec(capacities=(3, None), transfer_costs=(-1,))

    def test_instance_needs_enough_level0(self):
        from repro.core.errors import InfeasibleInstanceError

        dag = pyramid_dag(2)  # indegree 2 needs capacity >= 3
        with pytest.raises(InfeasibleInstanceError):
            MultilevelInstance(
                dag=dag,
                spec=HierarchySpec(capacities=(2, None), transfer_costs=(1,)),
            )


class TestRules:
    def test_compute_source_into_level0(self):
        dag = ComputationDAG(nodes=["x"])
        sim = MultilevelSimulator(make(dag))
        state, cost = sim.step(sim.initial_state(), MLCompute("x"))
        assert state.level_of("x") == 0
        assert cost == 0

    def test_compute_requires_level0_inputs(self):
        dag = chain_dag(2)
        sim = MultilevelSimulator(make(dag))
        state, _ = sim.step(sim.initial_state(), MLCompute(0))
        state, _ = sim.step(state, MLMove(0, 1))  # demote input
        with pytest.raises(IllegalMoveError, match="not in fastest"):
            sim.step(state, MLCompute(1))

    def test_move_only_adjacent(self):
        dag = ComputationDAG(nodes=["x"])
        sim = MultilevelSimulator(make(dag))
        state, _ = sim.step(sim.initial_state(), MLCompute("x"))
        with pytest.raises(IllegalMoveError, match="not adjacent"):
            sim.step(state, MLMove("x", 2))

    def test_move_costs_per_boundary(self):
        dag = ComputationDAG(nodes=["x"])
        sim = MultilevelSimulator(make(dag))
        state, _ = sim.step(sim.initial_state(), MLCompute("x"))
        state, c1 = sim.step(state, MLMove("x", 1))
        state, c2 = sim.step(state, MLMove("x", 2))
        assert (c1, c2) == (1, 10)
        # and the way back up is symmetric
        state, c3 = sim.step(state, MLMove("x", 1))
        assert c3 == 10

    def test_capacity_enforced_on_each_level(self):
        dag = ComputationDAG(nodes=list("abcd"))
        spec = HierarchySpec(capacities=(3, 1, None), transfer_costs=(1, 1))
        sim = MultilevelSimulator(MultilevelInstance(dag=dag, spec=spec))
        state = sim.initial_state()
        for v in "abc":
            state, _ = sim.step(state, MLCompute(v))
        with pytest.raises(IllegalMoveError, match="level 0 capacity"):
            sim.step(state, MLCompute("d"))
        state, _ = sim.step(state, MLMove("a", 1))
        with pytest.raises(IllegalMoveError, match="level 1 capacity"):
            sim.step(state, MLMove("b", 1))

    def test_delete_any_level(self):
        dag = ComputationDAG(nodes=["x"])
        sim = MultilevelSimulator(make(dag))
        state, _ = sim.step(sim.initial_state(), MLCompute("x"))
        state, _ = sim.step(state, MLMove("x", 1))
        state, cost = sim.step(state, MLDelete("x"))
        assert cost == 0 and state.level_of("x") is None

    def test_delete_requires_pebble(self):
        dag = ComputationDAG(nodes=["x"])
        sim = MultilevelSimulator(make(dag))
        with pytest.raises(IllegalMoveError):
            sim.step(sim.initial_state(), MLDelete("x"))

    def test_recompute_is_allowed(self):
        dag = ComputationDAG(nodes=["x"])
        sim = MultilevelSimulator(make(dag))
        state, _ = sim.step(sim.initial_state(), MLCompute("x"))
        state, _ = sim.step(state, MLDelete("x"))
        state, _ = sim.step(state, MLCompute("x"))
        assert state.level_of("x") == 0

    def test_compute_pulls_value_from_lower_level(self):
        # computing a node that already holds a pebble elsewhere replaces it
        dag = ComputationDAG(nodes=["x"])
        sim = MultilevelSimulator(make(dag))
        state, _ = sim.step(sim.initial_state(), MLCompute("x"))
        state, _ = sim.step(state, MLMove("x", 1))
        state, _ = sim.step(state, MLCompute("x"))
        assert state.level_of("x") == 0
        assert "x" not in state.levels[1]


class TestBaselineStrategy:
    @pytest.mark.parametrize("levels,fast", [(2, 3), (3, 3), (4, 3)])
    def test_complete_on_classic_dags(self, levels, fast):
        dag = pyramid_dag(3)
        spec = HierarchySpec.uniform(levels, fast)
        inst = MultilevelInstance(dag=dag, spec=spec)
        sched = multilevel_topological_schedule(inst)
        res = MultilevelSimulator(inst).run(sched, require_complete=True)
        assert res.complete
        assert res.peak_usage[0] <= fast

    def test_cost_scales_with_boundary_prices(self):
        dag = grid_stencil_dag(3, 3)
        cheap = HierarchySpec(capacities=(3, 6, None), transfer_costs=(1, 1))
        pricey = HierarchySpec(capacities=(3, 6, None), transfer_costs=(1, 100))
        cost_cheap = MultilevelSimulator(
            MultilevelInstance(dag=dag, spec=cheap)
        ).run(
            multilevel_topological_schedule(MultilevelInstance(dag=dag, spec=cheap)),
            require_complete=True,
        ).cost
        cost_pricey = MultilevelSimulator(
            MultilevelInstance(dag=dag, spec=pricey)
        ).run(
            multilevel_topological_schedule(MultilevelInstance(dag=dag, spec=pricey)),
            require_complete=True,
        ).cost
        assert cost_pricey > cost_cheap

    def test_parking_nearer_is_cheaper(self):
        """Keeping the working set at level 1 instead of the far level
        saves the expensive boundary entirely."""
        dag = grid_stencil_dag(3, 3)
        spec = HierarchySpec(capacities=(3, 50, None), transfer_costs=(1, 100))
        inst = MultilevelInstance(dag=dag, spec=spec)
        far = MultilevelSimulator(inst).run(
            multilevel_topological_schedule(inst), require_complete=True
        ).cost
        near = MultilevelSimulator(inst).run(
            multilevel_topological_schedule(inst, park_level=1),
            require_complete=True,
        ).cost
        assert near < far

    def test_incomplete_raises(self):
        dag = chain_dag(3)
        inst = MultilevelInstance(dag=dag, spec=spec3())
        with pytest.raises(IncompletePebblingError):
            MultilevelSimulator(inst).run([MLCompute(0)], require_complete=True)

    def test_rejects_non_topological_order(self):
        dag = chain_dag(3)
        inst = MultilevelInstance(dag=dag, spec=spec3())
        with pytest.raises(ValueError):
            multilevel_topological_schedule(inst, order=[2, 1, 0])


class TestTwoLevelEquivalence:
    """L=2 with unit costs IS the red-blue base game."""

    def make_pair(self, dag, r):
        spec = HierarchySpec(capacities=(r, None), transfer_costs=(Fraction(1),))
        ml = MultilevelInstance(dag=dag, spec=spec)
        return ml, two_level_equivalent(ml)

    def test_equivalent_instance_shape(self):
        ml, rb = self.make_pair(pyramid_dag(2), 3)
        assert rb.red_limit == 3
        assert rb.model.value == "base"

    def test_same_costs_on_translated_schedules(self):
        """Translate a red-blue schedule move-for-move and compare costs."""
        from repro import (
            Compute as RBCompute,
            Delete as RBDelete,
            Load as RBLoad,
            PebblingSimulator,
            Store as RBStore,
        )
        from repro.heuristics import fixed_order_schedule

        dag = pyramid_dag(3)
        ml, rb = self.make_pair(dag, 3)
        rb_sched = fixed_order_schedule(rb)
        translation = []
        for move in rb_sched:
            if isinstance(move, RBCompute):
                translation.append(MLCompute(move.node))
            elif isinstance(move, RBStore):
                translation.append(MLMove(move.node, 1))
            elif isinstance(move, RBLoad):
                translation.append(MLMove(move.node, 0))
            else:
                assert isinstance(move, RBDelete)
                translation.append(MLDelete(move.node))
        rb_cost = PebblingSimulator(rb).run(rb_sched, require_complete=True).cost
        ml_cost = MultilevelSimulator(ml).run(
            translation, require_complete=True
        ).cost
        assert rb_cost == ml_cost

    def test_rejects_non_two_level(self):
        ml = MultilevelInstance(dag=pyramid_dag(2), spec=spec3())
        with pytest.raises(ValueError):
            two_level_equivalent(ml)

    def test_rejects_non_unit_costs(self):
        spec = HierarchySpec(capacities=(3, None), transfer_costs=(Fraction(2),))
        ml = MultilevelInstance(dag=pyramid_dag(2), spec=spec)
        with pytest.raises(ValueError):
            two_level_equivalent(ml)
