"""Regression tests for the multi-level topological strategy.

The headline regression: ``park_level=k`` for a non-last level used to
*never delete*, so level k's capacity eventually overflowed and the
emitted schedule was illegal on any DAG with more than ``capacities[k]``
values.  Every schedule the strategy emits must replay cleanly through
the simulator — that is the whole point of a strategy.
"""

from fractions import Fraction

import pytest

from repro.generators import chain_dag, grid_stencil_dag, pyramid_dag
from repro.multilevel import (
    HierarchySpec,
    MLMove,
    MultilevelInstance,
    MultilevelSimulator,
    multilevel_topological_schedule,
)


def run(inst, sched):
    return MultilevelSimulator(inst).run(sched, require_complete=True)


class TestBoundedParkLevels:
    def test_bounded_park_level_is_legal(self):
        """grid(3x3) has 9 values but level 1 holds only 4: the old
        strategy overflowed it; the fixed one deletes dead values."""
        inst = MultilevelInstance(
            dag=grid_stencil_dag(3, 3),
            spec=HierarchySpec(
                capacities=(3, 4, None), transfer_costs=(Fraction(1), Fraction(10))
            ),
        )
        sched = multilevel_topological_schedule(inst, park_level=1)
        res = run(inst, sched)
        assert res.complete
        assert res.peak_usage[1] <= 4

    @pytest.mark.parametrize("park", [1, 2, None])
    def test_all_park_levels_replay_cleanly(self, park):
        inst = MultilevelInstance(
            dag=pyramid_dag(3),
            spec=HierarchySpec(
                capacities=(4, 10, None), transfer_costs=(Fraction(1), Fraction(5))
            ),
        )
        sched = multilevel_topological_schedule(inst, park_level=park)
        res = run(inst, sched)
        assert res.complete
        for peak, cap in zip(res.peak_usage, inst.spec.capacities):
            if cap is not None:
                assert peak <= cap

    def test_infeasible_park_level_rejected(self):
        """A park level whose capacity cannot hold the live working set
        must be rejected instead of emitting an illegal schedule."""
        inst = MultilevelInstance(
            dag=grid_stencil_dag(3, 3),
            spec=HierarchySpec(
                capacities=(3, 1, None), transfer_costs=(Fraction(1), Fraction(10))
            ),
        )
        with pytest.raises(ValueError, match="park level 1"):
            multilevel_topological_schedule(inst, park_level=1)

    def test_infeasible_park_zero_rejected(self):
        inst = MultilevelInstance(
            dag=pyramid_dag(3),
            spec=HierarchySpec(capacities=(3, None), transfer_costs=(Fraction(1),)),
        )
        with pytest.raises(ValueError, match="park level 0"):
            multilevel_topological_schedule(inst, park_level=0)

    def test_park_zero_feasible_when_everything_fits(self):
        dag = pyramid_dag(2)
        inst = MultilevelInstance(
            dag=dag,
            spec=HierarchySpec(
                capacities=(dag.n_nodes, None), transfer_costs=(Fraction(1),)
            ),
        )
        sched = multilevel_topological_schedule(inst, park_level=0)
        res = run(inst, sched)
        assert res.complete
        assert res.cost == 0  # nothing ever leaves the fastest level


class TestNoRedundantTraffic:
    def test_chain_costs_nothing(self):
        """On a chain every value is reused by the immediately next node:
        the fixed strategy keeps it at level 0 (no sink/bubble pair) and
        deletes it once dead, so no boundary is ever crossed."""
        inst = MultilevelInstance(
            dag=chain_dag(6),
            spec=HierarchySpec(
                capacities=(2, 4, None), transfer_costs=(Fraction(1), Fraction(10))
            ),
        )
        sched = multilevel_topological_schedule(inst)
        assert not any(isinstance(m, MLMove) for m in sched)
        assert run(inst, sched).cost == 0

    def test_still_rejects_non_topological_order(self):
        inst = MultilevelInstance(
            dag=chain_dag(3),
            spec=HierarchySpec(capacities=(2, None), transfer_costs=(Fraction(1),)),
        )
        with pytest.raises(ValueError, match="not topological"):
            multilevel_topological_schedule(inst, order=[2, 1, 0])

    def test_deeper_park_costs_more_on_pricey_far_boundary(self):
        dag = grid_stencil_dag(3, 3)
        inst = MultilevelInstance(
            dag=dag,
            spec=HierarchySpec(
                capacities=(3, 50, None), transfer_costs=(Fraction(1), Fraction(100))
            ),
        )
        near = run(inst, multilevel_topological_schedule(inst, park_level=1)).cost
        far = run(inst, multilevel_topological_schedule(inst)).cost
        assert near < far
