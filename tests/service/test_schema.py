"""Request schema validation and HTTP status mapping."""

import pytest

from repro.experiments import RunResult, RunStatus
from repro.service.schema import (
    ERROR_CODES,
    SchemaError,
    error_http_status,
    parse_query,
    result_payload,
)


def make_result(status, error=None):
    return RunResult(spec="service", dag="chain:3", model="oneshot",
                     method="exact", red_limit=2, status=status, error=error)


class TestParseQuery:
    def test_minimal(self):
        req = parse_query({"dag": "pyramid:3"})
        assert req.dag == "pyramid:3"
        assert req.model == "oneshot"
        assert req.method == "exact"
        assert req.red_limit == "min"
        assert req.timeout is None

    def test_full(self):
        req = parse_query({
            "dag": " grid:2x3 ", "model": "base", "method": "greedy",
            "red_limit": "min+2", "epsilon": "1/50", "timeout": 2,
        })
        assert req.dag == "grid:2x3"  # whitespace stripped
        assert req.model == "base"
        assert req.red_limit == "min+2"
        assert req.timeout == 2.0 and isinstance(req.timeout, float)

    def test_integer_red_limit(self):
        assert parse_query({"dag": "chain:3", "red_limit": 4}).red_limit == 4

    def test_task_conversion_applies_server_default_timeout(self):
        task = parse_query({"dag": "chain:3"}).task(timeout=60.0)
        assert task.timeout == 60.0
        assert task.spec == "service"
        explicit = parse_query({"dag": "chain:3", "timeout": 5}).task(timeout=60.0)
        assert explicit.timeout == 5.0

    @pytest.mark.parametrize("payload,fragment", [
        ("not-a-dict", "JSON object"),
        ([], "JSON object"),
        ({}, "'dag' is required"),
        ({"dag": ""}, "'dag' is required"),
        ({"dag": 42}, "'dag' is required"),
        ({"dag": "chain:3", "typo_field": 1}, "unknown field"),
        ({"dag": "chain:3", "model": "quantum"}, "unknown model"),
        ({"dag": "chain:3", "method": 7}, "'method' must be a string"),
        ({"dag": "chain:3", "method": "warp-drive"}, "warp-drive"),
        ({"dag": "chain:3", "red_limit": "min-1"}, "red_limit"),
        ({"dag": "chain:3", "red_limit": 0}, "red_limit must be >= 1"),
        ({"dag": "chain:3", "red_limit": True}, "red_limit"),
        ({"dag": "chain:3", "red_limit": 2.5}, "red_limit"),
        ({"dag": "chain:3", "epsilon": 0.01}, "'epsilon' must be a fraction"),
        ({"dag": "chain:3", "epsilon": "1/0"}, "bad epsilon"),
        ({"dag": "chain:3", "epsilon": "oops"}, "bad epsilon"),
        ({"dag": "chain:3", "timeout": "soon"}, "'timeout' must be a number"),
        ({"dag": "chain:3", "timeout": 0}, "'timeout' must be > 0"),
        ({"dag": "chain:3", "timeout": True}, "'timeout' must be a number"),
    ])
    def test_rejections(self, payload, fragment):
        with pytest.raises(SchemaError, match=".*"):
            try:
                parse_query(payload)
            except SchemaError as exc:
                assert fragment in str(exc)
                raise


class TestErrorHttpStatus:
    def test_timeout_is_504(self):
        assert error_http_status(make_result(RunStatus.TIMEOUT)) == 504

    def test_infeasible_is_a_valid_answer(self):
        assert error_http_status(make_result(RunStatus.INFEASIBLE)) == 200

    @pytest.mark.parametrize("error", [
        "ValueError: unknown DAG spec 'no-such-dag:3'",
        "ValueError: bad DAG spec 'chain:abc': invalid literal",
    ])
    def test_unbuildable_dag_is_callers_fault(self, error):
        assert error_http_status(make_result(RunStatus.ERROR, error)) == 400

    def test_solver_failure_is_502(self):
        result = make_result(RunStatus.ERROR, "MemoryError: boom")
        assert error_http_status(result) == 502

    def test_codes_table_consistent(self):
        assert ERROR_CODES["timeout"] == 504
        assert ERROR_CODES["bad-request"] == 400
        assert ERROR_CODES["execution-error"] == 502


class TestResultPayload:
    def test_strips_internal_spec_label(self):
        body = result_payload(make_result(RunStatus.TIMEOUT))
        assert "spec" not in body
        assert body["dag"] == "chain:3"
