"""End-to-end HTTP tests for the pebbling service.

No pytest-asyncio in the container: each test drives its own event loop
with ``asyncio.run``.  The blocking :class:`ServiceClient` talks to the
in-loop server from executor threads.
"""

import asyncio
import json
import time

import pytest

from repro._version import __version__
from repro.experiments import InlineBackend, MemoryResultStore, MultiprocessingBackend
from repro.service import PebbleService, ServiceClient, ServiceError


@pytest.fixture(scope="module")
def pool():
    backend = MultiprocessingBackend(jobs=2)
    yield backend
    backend.close()


class ServiceHarness:
    """Async context: a served PebbleService + executor-driven client."""

    def __init__(self, backend=None, store=None, **kw):
        self.service = PebbleService(backend or InlineBackend(), store, **kw)
        self.client = None

    async def __aenter__(self):
        host, port = await self.service.start("127.0.0.1", 0)
        self.host, self.port = host, port
        self.client = ServiceClient(f"http://{host}:{port}")
        return self

    async def __aexit__(self, *exc):
        if self.client is not None:
            self.client.close()
        await self.service.aclose()

    def call(self, method, *args):
        """Run a blocking client method off-loop; await the result."""
        loop = asyncio.get_running_loop()
        return loop.run_in_executor(None, lambda: getattr(self.client, method)(*args))

    def fresh_call(self, method, *args):
        """Same, but over a new single-use connection (thread-safe)."""
        loop = asyncio.get_running_loop()
        url = f"http://{self.host}:{self.port}"

        def run():
            with ServiceClient(url) as client:
                return getattr(client, method)(*args)

        return loop.run_in_executor(None, run)


def run(coro):
    return asyncio.run(coro)


class TestEndpoints:
    def test_health_and_catalogues(self):
        async def scenario():
            async with ServiceHarness() as h:
                health = await h.call("health")
                assert health["ok"] and health["version"] == __version__
                methods = await h.call("methods")
                assert "exact" in methods and "baseline" in methods
                specs = await h.call("specs")
                assert any(s["name"] == "smoke" for s in specs)

        run(scenario())

    def test_query_happy_path(self):
        async def scenario():
            async with ServiceHarness() as h:
                result = await h.call(
                    "query", {"dag": "pyramid:3", "method": "baseline"}
                )
                assert result["status"] == "ok"
                assert result["cost"] is not None
                assert result["red_limit"] >= 2

        run(scenario())

    def test_warm_query_is_cached_and_fast(self):
        async def scenario():
            store = MemoryResultStore()
            async with ServiceHarness(store=store) as h:
                cold = await h.call("query", {"dag": "pyramid:3",
                                              "method": "baseline"})
                assert not cold["cached"]
                start = time.perf_counter()
                warm = await h.call("query", {"dag": "pyramid:3",
                                              "method": "baseline"})
                elapsed = time.perf_counter() - start
                assert warm["cached"]
                assert warm["cost"] == cold["cost"]
                assert elapsed < 0.5  # acceptance bound is 10ms server-side;
                # allow generous slack for executor hop + CI jitter

        run(scenario())

    def test_infeasible_is_a_200_answer(self):
        async def scenario():
            async with ServiceHarness() as h:
                envelope = await h.call(
                    "query_raw",
                    {"dag": "pyramid:3", "method": "greedy", "red_limit": 1},
                )
                assert envelope["ok"]
                assert envelope["result"]["status"] == "infeasible"

        run(scenario())

    def test_stats_endpoint(self):
        async def scenario():
            store = MemoryResultStore()
            async with ServiceHarness(store=store) as h:
                query = {"dag": "chain:4", "method": "baseline"}
                await h.call("query", query)
                await h.call("query", query)
                stats = await h.call("stats")
                assert stats["queue"]["requests"] == 2
                assert stats["queue"]["executed"] == 1
                assert stats["queue"]["cache_hits"] == 1
                assert stats["store"]["hit_rate"] == 0.5

        run(scenario())

    def test_batch_endpoint(self):
        async def scenario():
            async with ServiceHarness() as h:
                results = await h.call("batch", [
                    {"dag": "chain:3", "method": "baseline"},
                    {"dag": "chain:4", "method": "baseline"},
                ])
                assert len(results) == 2
                assert all(r["ok"] for r in results)

        run(scenario())


class TestErrorPaths:
    def test_malformed_schema_is_400(self):
        async def scenario():
            async with ServiceHarness() as h:
                for bad in (
                    {"dag": ""},
                    {"dag": "chain:3", "model": "quantum"},
                    {"dag": "chain:3", "frobnicate": True},
                ):
                    envelope = await h.call("query_raw", bad)
                    assert not envelope["ok"]
                    assert envelope["error"]["code"] == "bad-request"

        run(scenario())

    def test_unbuildable_dag_is_400(self):
        async def scenario():
            async with ServiceHarness() as h:
                with pytest.raises(ServiceError) as info:
                    await h.call("query", {"dag": "no-such-dag:3"})
                assert info.value.status == 400
                assert "unknown DAG spec" in str(info.value)

        run(scenario())

    def test_missing_spec_file_is_400(self, tmp_path):
        # regression: a @path spec naming a missing file used to raise a
        # raw OSError inside the worker, surfacing as a 502 internal
        # error instead of a client-side 400
        async def scenario():
            async with ServiceHarness() as h:
                with pytest.raises(ServiceError) as info:
                    await h.call("query", {"dag": f"@{tmp_path}/missing.json"})
                assert info.value.status == 400
                assert "bad DAG spec" in str(info.value)

        run(scenario())

    def test_timeout_is_504(self, pool):
        async def scenario():
            async with ServiceHarness(backend=pool) as h:
                with pytest.raises(ServiceError) as info:
                    await h.call("query", {"dag": "chain:3",
                                           "method": "sleep:30",
                                           "timeout": 0.3})
                assert info.value.status == 504
                assert info.value.code == "timeout"
                stats = await h.call("stats")
                assert stats["queue"]["timeouts"] == 1

        run(scenario())

    def test_unknown_route_and_wrong_verb(self):
        async def scenario():
            async with ServiceHarness() as h:
                with pytest.raises(ServiceError) as info:
                    await h.call("_request", "GET", "/v1/nope")
                assert info.value.status == 404
                with pytest.raises(ServiceError) as info:
                    await h.call("_request", "POST", "/healthz", {})
                assert info.value.status == 405

        run(scenario())

    def test_oversized_body_is_413(self):
        async def scenario():
            async with ServiceHarness(max_body=256) as h:
                with pytest.raises(ServiceError) as info:
                    await h.call("query", {"dag": "chain:3" + " " * 512})
                assert info.value.status == 413

        run(scenario())

    def test_raw_protocol_errors(self):
        """Bytes-level checks http.client cannot produce: bad JSON body,
        missing Content-Length, garbage request line."""

        async def roundtrip(host, port, raw):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(raw)
            await writer.drain()
            writer.write_eof()
            response = await reader.read()
            writer.close()
            return response

        async def scenario():
            async with ServiceHarness() as h:
                bad_json = (
                    b"POST /v1/query HTTP/1.1\r\nContent-Length: 5\r\n\r\n{oops"
                )
                response = await roundtrip(h.host, h.port, bad_json)
                assert b"400 Bad Request" in response
                assert b"not valid JSON" in response

                no_length = b"POST /v1/query HTTP/1.1\r\n\r\n"
                response = await roundtrip(h.host, h.port, no_length)
                assert b"411 Length Required" in response

                garbage = b"EHLO\r\n\r\n"
                response = await roundtrip(h.host, h.port, garbage)
                assert b"400 Bad Request" in response

        run(scenario())


class TestConcurrency:
    def test_duplicate_queries_computed_exactly_once(self):
        async def scenario():
            store = MemoryResultStore()
            async with ServiceHarness(store=store) as h:
                query = {"dag": "pyramid:4", "method": "baseline"}
                results = await asyncio.gather(
                    *(h.fresh_call("query", query) for _ in range(8))
                )
                assert len({r["cost"] for r in results}) == 1
                stats = await h.call("stats")
                assert stats["queue"]["requests"] == 8
                assert stats["queue"]["executed"] == 1
                assert (stats["queue"]["coalesced"]
                        + stats["queue"]["cache_hits"]) == 7
                assert store.puts == 1  # the cell was stored exactly once

        run(scenario())

    def test_distinct_queries_batched(self):
        async def scenario():
            async with ServiceHarness() as h:
                queries = [{"dag": f"chain:{n}", "method": "baseline"}
                           for n in range(2, 8)]
                results = await asyncio.gather(
                    *(h.fresh_call("query", q) for q in queries)
                )
                assert len(results) == 6
                stats = await h.call("stats")
                assert stats["queue"]["executed"] == 6
                assert stats["queue"]["batches"] <= 6

        run(scenario())

    def test_crash_does_not_drop_other_requests(self, pool):
        """Acceptance: a worker crash mid-request leaves concurrent
        requests and the service itself healthy."""

        async def scenario():
            async with ServiceHarness(backend=pool) as h:
                answers = await asyncio.gather(
                    h.fresh_call("query_raw", {"dag": "chain:3",
                                               "method": "crash"}),
                    *(h.fresh_call("query", {"dag": f"chain:{n}",
                                             "method": "baseline"})
                      for n in (4, 5, 6)),
                )
                crashed, *good = answers
                assert not crashed["ok"]
                assert "worker process died" in crashed["error"]["message"]
                assert crashed["error"]["code"] == "execution-error"
                assert all(r["status"] == "ok" for r in good)
                health = await h.call("health")
                assert health["ok"]
                again = await h.call("query", {"dag": "chain:7",
                                               "method": "baseline"})
                assert again["status"] == "ok"

        run(scenario())


class TestLifecycle:
    def test_clean_shutdown_with_open_connections(self):
        async def scenario():
            h = ServiceHarness()
            await h.__aenter__()
            await h.call("health")  # leaves a keep-alive connection open
            await h.__aexit__()

        run(scenario())

    def test_sequential_services_rebind(self):
        """Two services back to back: no lingering state or port issues."""

        async def scenario():
            for _ in range(2):
                async with ServiceHarness() as h:
                    result = await h.call("query", {"dag": "chain:3",
                                                    "method": "baseline"})
                    assert result["status"] == "ok"

        run(scenario())

    def test_payload_round_trips_as_json(self):
        async def scenario():
            async with ServiceHarness() as h:
                result = await h.call("query", {"dag": "pyramid:3",
                                                "method": "baseline"})
                json.dumps(result)  # fully JSON-serialisable

        run(scenario())
