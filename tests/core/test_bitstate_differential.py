"""Differential tests: the bitmask engine must agree with the legacy one.

Hypothesis generates random DAGs, models, red limits and move sequences,
and every property asserts that :mod:`repro.core.bitstate` and the legacy
:mod:`repro.core.state` implementations agree bit-for-bit on

* move legality (same legal-move sets, same rejection error types),
* resulting states (decode(bit step) == legacy step, and re-encoding
  round-trips),
* costs,
* hash/equality semantics (state equality iff bit-encoding equality,
  equal states hash equally).

The walks draw moves from the *unpruned* legal-move enumeration so Delete
on blue pebbles and every model-specific corner is exercised too.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    ComputationDAG,
    IllegalMoveError,
    PebblingState,
    apply_move,
    apply_move_bits,
    bit_layout,
    cost_model_for,
    legal_moves,
    legal_moves_bits,
)
from repro.core.bitstate import BitState
from repro.core.moves import MOVE_KINDS

MODELS = ("base", "oneshot", "nodel", "compcost")

#: every property must clear at least this many examples (ISSUE 2 demands
#: >= 200); keep deadline off — the first example pays bit-layout caching.
DIFF_SETTINGS = dict(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def scenarios(draw):
    """A random (dag, costs, red_limit) triple, small enough to exhaust."""
    n = draw(st.integers(min_value=1, max_value=7))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = []
    indeg = [0] * n
    for (u, v) in pairs:
        if indeg[v] < 3 and draw(st.booleans()):
            chosen.append((u, v))
            indeg[v] += 1
    dag = ComputationDAG(edges=chosen, nodes=range(n))
    costs = cost_model_for(draw(st.sampled_from(MODELS)))
    red_limit = dag.max_indegree + 1 + draw(st.integers(min_value=0, max_value=2))
    return dag, costs, red_limit


def walk(data, dag, costs, red_limit, steps):
    """Random-walk both engines in lockstep, asserting agreement throughout.

    Returns the list of (legacy_state, bit_state) pairs visited.
    """
    layout = bit_layout(dag)
    state = PebblingState.initial()
    bits = BitState.initial()
    visited = [(state, bits)]
    for _ in range(steps):
        legal = sorted(
            legal_moves(state, dag, costs, red_limit, prune_delete_blue=False)
        )
        legal_b = sorted(
            legal_moves_bits(layout, bits, costs, red_limit, prune_delete_blue=False)
        )
        assert legal == legal_b, "legal-move sets diverge"
        if not legal:
            break
        move = legal[data.draw(st.integers(0, len(legal) - 1), label="move")]
        state, cost = apply_move(state, move, dag, costs, red_limit)
        bits, cost_b = apply_move_bits(layout, bits, move, costs, red_limit)
        assert cost == cost_b, f"cost diverges on {move}"
        visited.append((state, bits))
    return visited


class TestWalkAgreement:
    @settings(**DIFF_SETTINGS)
    @given(scenario=scenarios(), data=st.data())
    def test_states_costs_and_legality_agree(self, scenario, data):
        dag, costs, red_limit = scenario
        layout = bit_layout(dag)
        for state, bits in walk(data, dag, costs, red_limit, steps=25):
            assert layout.decode_state(bits) == state
            assert layout.encode_state(state) == bits
            assert state.to_bits(layout) == bits
            assert PebblingState.from_bits(layout, bits) == state

    @settings(**DIFF_SETTINGS)
    @given(scenario=scenarios(), data=st.data())
    def test_invariants_hold_along_walks(self, scenario, data):
        dag, costs, red_limit = scenario
        layout = bit_layout(dag)
        for state, bits in walk(data, dag, costs, red_limit, steps=20):
            state.check_invariants(dag)
            bits.check_invariants(layout)
            assert bits.is_complete(layout) == state.is_complete(dag)
            assert state.red.issubset(state.computed | state.blue | state.red)
            # red-count agreement feeds the capacity rule
            assert bits.red.bit_count() == len(state.red)


class TestIllegalMoveAgreement:
    @settings(**DIFF_SETTINGS)
    @given(scenario=scenarios(), data=st.data())
    def test_arbitrary_moves_accepted_or_rejected_identically(self, scenario, data):
        dag, costs, red_limit = scenario
        layout = bit_layout(dag)
        state, bits = walk(data, dag, costs, red_limit, steps=12)[-1]
        for _ in range(8):
            kind = MOVE_KINDS[data.draw(st.integers(0, 3), label="kind")]
            node = data.draw(
                st.integers(-1, dag.n_nodes - 1), label="node"
            )  # -1 = not in the DAG
            move = kind(node)
            legacy_outcome = bit_outcome = None
            try:
                legacy_outcome = apply_move(state, move, dag, costs, red_limit)
            except IllegalMoveError as err:  # includes all subclasses
                legacy_err = type(err)
            try:
                bit_outcome = apply_move_bits(layout, bits, move, costs, red_limit)
            except IllegalMoveError as err:
                bit_err = type(err)
            assert (legacy_outcome is None) == (bit_outcome is None)
            if legacy_outcome is None:
                assert legacy_err is bit_err, "error types diverge"
            else:
                new_state, cost = legacy_outcome
                new_bits, cost_b = bit_outcome
                assert cost == cost_b
                assert layout.decode_state(new_bits) == new_state


class TestHashEqualitySemantics:
    @settings(**DIFF_SETTINGS)
    @given(scenario=scenarios(), data=st.data())
    def test_state_equality_iff_bit_equality(self, scenario, data):
        dag, costs, red_limit = scenario
        layout = bit_layout(dag)
        walk_a = walk(data, dag, costs, red_limit, steps=12)
        walk_b = walk(data, dag, costs, red_limit, steps=12)
        for state_a, bits_a in walk_a:
            for state_b, bits_b in walk_b:
                assert (state_a == state_b) == (bits_a == bits_b)
                if state_a == state_b:
                    assert hash(state_a) == hash(state_b)
                    assert hash(bits_a) == hash(bits_b)

    @settings(**DIFF_SETTINGS)
    @given(scenario=scenarios(), data=st.data())
    def test_dedup_containers_agree(self, scenario, data):
        """Search correctness rests on dict/set dedup: both encodings must
        collapse a walk to the same number of distinct states."""
        dag, costs, red_limit = scenario
        pairs = walk(data, dag, costs, red_limit, steps=25)
        assert len({s for s, _ in pairs}) == len({b for _, b in pairs})
