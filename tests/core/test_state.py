"""Tests for PebblingState transitions: every rule of every model variant."""

from fractions import Fraction

import pytest

from repro import (
    CapacityExceededError,
    ComputationDAG,
    Compute,
    Delete,
    DeletionForbiddenError,
    IllegalMoveError,
    Load,
    PebblingState,
    RecomputationError,
    Store,
    apply_move,
    cost_model_for,
    legal_moves,
)


@pytest.fixture
def dag():
    # a, b -> c ; c -> d
    return ComputationDAG([("a", "c"), ("b", "c"), ("c", "d")])


BASE = cost_model_for("base")
ONESHOT = cost_model_for("oneshot")
NODEL = cost_model_for("nodel")
COMPCOST = cost_model_for("compcost")


def state(red=(), blue=(), computed=None):
    red, blue = frozenset(red), frozenset(blue)
    if computed is None:
        computed = red | blue
    return PebblingState(red, blue, frozenset(computed))


class TestCompute:
    def test_source_computable_on_empty_board(self, dag):
        s2, cost = apply_move(state(), Compute("a"), dag, BASE, 3)
        assert "a" in s2.red and "a" in s2.computed
        assert cost == 0

    def test_inner_node_requires_all_inputs_red(self, dag):
        with pytest.raises(IllegalMoveError, match="without a red pebble"):
            apply_move(state(red={"a"}), Compute("c"), dag, BASE, 3)

    def test_inner_node_with_inputs_red(self, dag):
        s = state(red={"a", "b"})
        s2, cost = apply_move(s, Compute("c"), dag, BASE, 3)
        assert s2.red == {"a", "b", "c"}
        assert cost == 0

    def test_blue_input_does_not_count(self, dag):
        s = state(red={"a"}, blue={"b"})
        with pytest.raises(IllegalMoveError):
            apply_move(s, Compute("c"), dag, BASE, 3)

    def test_capacity_enforced(self, dag):
        s = state(red={"a", "b"})
        with pytest.raises(CapacityExceededError):
            apply_move(s, Compute("c"), dag, BASE, 2)

    def test_compute_on_red_node_illegal(self, dag):
        s = state(red={"a"})
        with pytest.raises(IllegalMoveError, match="already holds a red"):
            apply_move(s, Compute("a"), dag, BASE, 3)

    def test_compute_replaces_blue_pebble(self, dag):
        # Recomputing a blue node turns it red (explicit nodel semantics).
        s = state(red=set(), blue={"a"})
        s2, _ = apply_move(s, Compute("a"), dag, NODEL, 3)
        assert "a" in s2.red and "a" not in s2.blue

    def test_oneshot_forbids_recompute(self, dag):
        s = state(red=set(), blue=set(), computed={"a"})
        with pytest.raises(RecomputationError):
            apply_move(s, Compute("a"), dag, ONESHOT, 3)

    def test_base_allows_recompute(self, dag):
        s = state(red=set(), blue=set(), computed={"a"})
        s2, cost = apply_move(s, Compute("a"), dag, BASE, 3)
        assert "a" in s2.red
        assert cost == 0

    def test_compcost_charges_epsilon(self, dag):
        _, cost = apply_move(state(), Compute("a"), dag, COMPCOST, 3)
        assert cost == Fraction(1, 100)

    def test_unknown_node_rejected(self, dag):
        with pytest.raises(IllegalMoveError, match="not in the DAG"):
            apply_move(state(), Compute("zz"), dag, BASE, 3)


class TestLoadStore:
    def test_load_blue_to_red(self, dag):
        s = state(blue={"a"})
        s2, cost = apply_move(s, Load("a"), dag, BASE, 3)
        assert s2.red == {"a"} and s2.blue == frozenset()
        assert cost == 1

    def test_load_requires_blue(self, dag):
        with pytest.raises(IllegalMoveError, match="no blue pebble"):
            apply_move(state(red={"a"}), Load("a"), dag, BASE, 3)

    def test_load_respects_capacity(self, dag):
        s = state(red={"a", "b"}, blue={"c"}, computed={"a", "b", "c"})
        with pytest.raises(CapacityExceededError):
            apply_move(s, Load("c"), dag, BASE, 2)

    def test_store_red_to_blue(self, dag):
        s = state(red={"a"})
        s2, cost = apply_move(s, Store("a"), dag, BASE, 3)
        assert s2.blue == {"a"} and s2.red == frozenset()
        assert cost == 1

    def test_store_requires_red(self, dag):
        with pytest.raises(IllegalMoveError, match="no red pebble"):
            apply_move(state(blue={"a"}), Store("a"), dag, BASE, 3)

    def test_store_frees_red_slot(self, dag):
        s = state(red={"a", "b"})
        s2, _ = apply_move(s, Store("a"), dag, BASE, 2)
        s3, _ = apply_move(s2, Compute("a"), dag, BASE, 2)  # recompute into free slot
        assert s3.red == {"a", "b"}


class TestDelete:
    def test_delete_red(self, dag):
        s = state(red={"a"})
        s2, cost = apply_move(s, Delete("a"), dag, BASE, 3)
        assert not s2.has_pebble("a")
        assert "a" in s2.computed  # history is preserved
        assert cost == 0

    def test_delete_blue(self, dag):
        s = state(blue={"a"})
        s2, _ = apply_move(s, Delete("a"), dag, BASE, 3)
        assert not s2.has_pebble("a")

    def test_delete_requires_pebble(self, dag):
        with pytest.raises(IllegalMoveError, match="no pebble"):
            apply_move(state(), Delete("a"), dag, BASE, 3)

    def test_nodel_forbids_delete(self, dag):
        s = state(red={"a"})
        with pytest.raises(DeletionForbiddenError):
            apply_move(s, Delete("a"), dag, NODEL, 3)

    def test_oneshot_allows_delete(self, dag):
        s = state(red={"a"})
        s2, cost = apply_move(s, Delete("a"), dag, ONESHOT, 3)
        assert cost == 0 and not s2.has_pebble("a")


class TestStateObject:
    def test_initial_state_empty(self):
        s = PebblingState.initial()
        assert s.red == s.blue == s.computed == frozenset()

    def test_equality_and_hash(self):
        s1 = state(red={"a"}, blue={"b"})
        s2 = state(red={"a"}, blue={"b"})
        assert s1 == s2 and hash(s1) == hash(s2)

    def test_states_with_different_history_differ(self):
        s1 = state(red={"a"}, computed={"a"})
        s2 = state(red={"a"}, computed={"a", "b"})
        assert s1 != s2

    def test_is_complete(self, dag):
        assert not state().is_complete(dag)
        assert state(blue={"d"}).is_complete(dag)
        assert state(red={"d"}).is_complete(dag)

    def test_invariants_pass_for_legal_state(self):
        state(red={"a"}, blue={"b"}).check_invariants()

    def test_invariants_catch_double_pebble(self):
        s = PebblingState(frozenset({"a"}), frozenset({"a"}), frozenset({"a"}))
        with pytest.raises(AssertionError):
            s.check_invariants()

    def test_invariants_catch_uncomputed_pebble(self):
        s = PebblingState(frozenset({"a"}), frozenset(), frozenset())
        with pytest.raises(AssertionError):
            s.check_invariants()


class TestLegalMoves:
    def all_legal(self, s, dag, costs, R, **kw):
        return set(legal_moves(s, dag, costs, R, **kw))

    def test_empty_board_offers_source_computes_only(self, dag):
        moves = self.all_legal(state(), dag, BASE, 3)
        assert moves == {Compute("a"), Compute("b")}

    def test_full_red_blocks_compute_and_load(self, dag):
        s = state(red={"a", "b"}, blue={"c"}, computed={"a", "b", "c"})
        moves = self.all_legal(s, dag, BASE, 2)
        assert Load("c") not in moves
        assert Compute("c") not in moves
        assert Store("a") in moves and Delete("a") in moves

    def test_oneshot_excludes_computed_nodes(self, dag):
        s = state(computed={"a"})
        moves = self.all_legal(s, dag, ONESHOT, 3)
        assert Compute("a") not in moves
        assert Compute("b") in moves

    def test_nodel_has_no_deletes(self, dag):
        s = state(red={"a"})
        moves = self.all_legal(s, dag, NODEL, 3)
        assert not any(isinstance(m, Delete) for m in moves)

    def test_delete_blue_pruned_by_default(self, dag):
        s = state(blue={"a"})
        assert Delete("a") not in self.all_legal(s, dag, BASE, 3)
        assert Delete("a") in self.all_legal(
            s, dag, BASE, 3, prune_delete_blue=False
        )

    def test_every_enumerated_move_is_applicable(self, dag):
        s = state(red={"a"}, blue={"b"}, computed={"a", "b"})
        for costs in (BASE, ONESHOT, NODEL, COMPCOST):
            for m in legal_moves(s, dag, costs, 3, prune_delete_blue=False):
                apply_move(s, m, dag, costs, 3)  # must not raise
