"""Tests for Schedule and CostBreakdown containers."""

from fractions import Fraction

import pytest

from repro import Compute, CostBreakdown, Delete, Load, Schedule, Store


class TestSchedule:
    def test_construction_and_length(self):
        s = Schedule([Compute("a"), Store("a")])
        assert len(s) == 2
        assert list(s) == [Compute("a"), Store("a")]

    def test_indexing_and_slicing(self):
        s = Schedule([Compute("a"), Store("a"), Load("a")])
        assert s[0] == Compute("a")
        assert s[1:] == Schedule([Store("a"), Load("a")])

    def test_concatenation(self):
        s = Schedule([Compute("a")]) + Schedule([Store("a")])
        assert s == Schedule([Compute("a"), Store("a")])

    def test_concatenation_with_plain_list(self):
        s = Schedule([Compute("a")]) + [Store("a")]
        assert len(s) == 2

    def test_equality_and_hash(self):
        a = Schedule([Compute("x")])
        b = Schedule([Compute("x")])
        assert a == b and hash(a) == hash(b)

    def test_count_by_kind(self):
        s = Schedule([Compute("a"), Store("a"), Store("b"), Delete("a")])
        assert s.count(Store) == 2
        assert s.count(Load) == 0

    def test_nodes_touched(self):
        s = Schedule([Compute("a"), Store("b")])
        assert s.nodes_touched() == {"a", "b"}

    def test_compact_str(self):
        s = Schedule([Compute("a"), Store("a")])
        assert s.compact_str() == "C(a) S(a)"

    def test_as_tuples_round_trippable(self):
        from repro import move_from_tuple

        s = Schedule([Compute("a"), Load("b")])
        assert [move_from_tuple(t) for t in s.as_tuples()] == list(s)

    def test_repr_truncates_long_schedules(self):
        s = Schedule([Compute(i) for i in range(50)])
        assert "..." in repr(s)


class TestCostBreakdown:
    def test_records_by_kind(self):
        b = CostBreakdown()
        b.record(Load("a"), Fraction(1))
        b.record(Store("a"), Fraction(1))
        b.record(Compute("a"), Fraction(1, 100))
        b.record(Delete("a"), Fraction(0))
        assert b.loads == b.stores == b.computes == b.deletes == 1
        assert b.transfers == 2
        assert b.transfer_cost == 2
        assert b.total_cost == Fraction(201, 100)

    def test_as_dict_keys(self):
        b = CostBreakdown()
        d = b.as_dict()
        assert set(d) == {
            "loads", "stores", "computes", "deletes",
            "transfer_cost", "compute_cost", "total_cost",
        }

    def test_unknown_move_rejected(self):
        b = CostBreakdown()
        with pytest.raises(TypeError):
            b.record("not a move", Fraction(0))
