"""Tests for the move algebra."""

import pytest

from repro import Compute, Delete, Load, Move, Store, move_from_tuple
from repro.core.moves import MOVE_KINDS


class TestMoveBasics:
    def test_equality_same_kind_same_node(self):
        assert Load("v") == Load("v")
        assert Load("v") != Load("w")

    def test_inequality_across_kinds(self):
        assert Load("v") != Store("v")
        assert Compute("v") != Delete("v")

    def test_hashable_and_distinct_in_sets(self):
        moves = {Load("v"), Store("v"), Compute("v"), Delete("v"), Load("v")}
        assert len(moves) == 4

    def test_str_mnemonics(self):
        assert str(Load("v")) == "L(v)"
        assert str(Store("v")) == "S(v)"
        assert str(Compute("v")) == "C(v)"
        assert str(Delete("v")) == "D(v)"

    def test_repr_contains_node(self):
        assert "'v'" in repr(Load("v"))

    def test_ordering_by_kind_then_node(self):
        assert Load("b") < Store("a")
        assert Load("a") < Load("b")
        assert sorted([Delete("x"), Load("x")])[0] == Load("x")

    def test_kind_ids_are_distinct(self):
        assert len({cls.kind_id for cls in MOVE_KINDS}) == 4

    def test_nodes_may_be_tuples(self):
        m = Compute(("group", 3))
        assert m.node == ("group", 3)
        assert m == Compute(("group", 3))


class TestSerialization:
    def test_round_trip(self):
        for cls in MOVE_KINDS:
            m = cls("node7")
            assert move_from_tuple(m.as_tuple()) == m

    def test_as_tuple_format(self):
        assert Store("x").as_tuple() == ("store", "x")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown move kind"):
            move_from_tuple(("teleport", "x"))
