"""Tests for the model variants and their cost structure (paper Table 1)."""

from fractions import Fraction

import pytest

from repro import ALL_MODELS, CostModel, DEFAULT_EPSILON, Model, cost_model_for


class TestModelEnum:
    def test_four_variants(self):
        assert len(ALL_MODELS) == 4
        assert {m.value for m in ALL_MODELS} == {"base", "oneshot", "nodel", "compcost"}

    def test_parse_string(self):
        assert Model.parse("oneshot") is Model.ONESHOT
        assert Model.parse("BASE") is Model.BASE

    def test_parse_model_identity(self):
        assert Model.parse(Model.NODEL) is Model.NODEL

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown model"):
            Model.parse("twoshot")


class TestCostModels:
    def test_base_all_free_except_transfers(self):
        cm = cost_model_for("base")
        assert cm.load_cost == 1 and cm.store_cost == 1
        assert cm.compute_cost == 0 and cm.delete_cost == 0
        assert cm.recompute_allowed and cm.delete_allowed

    def test_oneshot_forbids_recompute_only(self):
        cm = cost_model_for("oneshot")
        assert not cm.recompute_allowed
        assert cm.delete_allowed
        assert cm.compute_cost == 0

    def test_nodel_forbids_delete_only(self):
        cm = cost_model_for("nodel")
        assert cm.recompute_allowed
        assert not cm.delete_allowed

    def test_compcost_charges_epsilon(self):
        cm = cost_model_for("compcost")
        assert cm.compute_cost == DEFAULT_EPSILON == Fraction(1, 100)
        assert cm.recompute_allowed and cm.delete_allowed

    def test_compcost_custom_epsilon(self):
        cm = cost_model_for("compcost", epsilon=Fraction(1, 3))
        assert cm.compute_cost == Fraction(1, 3)

    def test_compcost_epsilon_must_be_in_unit_interval(self):
        with pytest.raises(ValueError):
            cost_model_for("compcost", epsilon=1)
        with pytest.raises(ValueError):
            cost_model_for("compcost", epsilon=0)
        with pytest.raises(ValueError):
            cost_model_for("compcost", epsilon=Fraction(3, 2))

    def test_costs_are_exact_fractions(self):
        for m in ALL_MODELS:
            cm = cost_model_for(m)
            for attr in ("load_cost", "store_cost", "compute_cost", "delete_cost"):
                assert isinstance(getattr(cm, attr), Fraction)

    def test_transfer_cost(self):
        assert cost_model_for("base").transfer_cost == 2

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostModel(model=Model.BASE, load_cost=Fraction(-1))

    def test_coercion_from_int(self):
        cm = CostModel(model=Model.BASE, load_cost=2)
        assert cm.load_cost == Fraction(2)


class TestTable1:
    """The table1_row renderings must reproduce the paper's Table 1."""

    def test_base_row(self):
        row = cost_model_for("base").table1_row()
        assert row == {
            "model": "base",
            "blue_to_red": "1",
            "red_to_blue": "1",
            "compute": "0",
            "delete": "0",
        }

    def test_oneshot_row_marks_single_compute(self):
        row = cost_model_for("oneshot").table1_row()
        assert row["compute"] == "0,inf,inf,..."
        assert row["delete"] == "0"

    def test_nodel_row_marks_delete_inf(self):
        row = cost_model_for("nodel").table1_row()
        assert row["delete"] == "inf"
        assert row["compute"] == "0"

    def test_compcost_row_shows_epsilon(self):
        row = cost_model_for("compcost").table1_row()
        assert row["compute"] == "1/100"
