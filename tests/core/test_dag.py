"""Unit tests for ComputationDAG."""

import networkx as nx
import pytest

from repro import ComputationDAG, CycleError, GraphError


def diamond():
    # a -> b, a -> c, b -> d, c -> d
    return ComputationDAG([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestConstruction:
    def test_empty_dag(self):
        dag = ComputationDAG()
        assert dag.n_nodes == 0
        assert dag.n_edges == 0
        assert dag.max_indegree == 0

    def test_isolated_nodes_are_sources_and_sinks(self):
        dag = ComputationDAG(nodes=["x", "y"])
        assert dag.sources == {"x", "y"}
        assert dag.sinks == {"x", "y"}

    def test_basic_counts(self):
        dag = diamond()
        assert dag.n_nodes == 4
        assert dag.n_edges == 4
        assert dag.max_indegree == 2
        assert dag.min_red_pebbles == 3

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            ComputationDAG([("a", "a")])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(GraphError):
            ComputationDAG([("a", "b"), ("a", "b")])

    def test_rejects_cycle(self):
        with pytest.raises(CycleError):
            ComputationDAG([("a", "b"), ("b", "c"), ("c", "a")])

    def test_cycle_error_reports_remaining(self):
        # a <-> b is a cycle; c hangs off it, so all 3 nodes survive peeling.
        with pytest.raises(CycleError) as err:
            ComputationDAG([("a", "b"), ("b", "a"), ("a", "c")])
        assert err.value.remaining == 3

    def test_from_predecessor_map(self):
        dag = ComputationDAG.from_predecessor_map({"c": ["a", "b"], "a": [], "b": []})
        assert dag.predecessors("c") == ("a", "b")
        assert dag.sources == {"a", "b"}
        assert dag.sinks == {"c"}


class TestAccessors:
    def test_sources_and_sinks(self):
        dag = diamond()
        assert dag.sources == {"a"}
        assert dag.sinks == {"d"}

    def test_predecessors_successors(self):
        dag = diamond()
        assert set(dag.predecessors("d")) == {"b", "c"}
        assert set(dag.successors("a")) == {"b", "c"}
        assert dag.predecessors("a") == ()
        assert dag.successors("d") == ()

    def test_degrees(self):
        dag = diamond()
        assert dag.indegree("d") == 2
        assert dag.outdegree("a") == 2
        assert dag.indegree("a") == 0

    def test_contains_iter_len(self):
        dag = diamond()
        assert "a" in dag and "z" not in dag
        assert len(dag) == 4
        assert set(iter(dag)) == {"a", "b", "c", "d"}

    def test_topological_order_respects_edges(self):
        dag = diamond()
        order = dag.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for u, v in dag.edges():
            assert pos[u] < pos[v]

    def test_edges_iteration_complete(self):
        dag = diamond()
        assert sorted(dag.edges()) == [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]

    def test_non_sources_in_topo_order(self):
        dag = diamond()
        ns = dag.non_sources()
        assert set(ns) == {"b", "c", "d"}
        assert ns[-1] == "d"


class TestDerivedStructure:
    def test_ancestors(self):
        dag = diamond()
        assert dag.ancestors("d") == {"a", "b", "c"}
        assert dag.ancestors("a") == frozenset()

    def test_descendants(self):
        dag = diamond()
        assert dag.descendants("a") == {"b", "c", "d"}
        assert dag.descendants("d") == frozenset()

    def test_depth_of_diamond(self):
        assert diamond().depth() == 2

    def test_depth_of_chain(self):
        chain = ComputationDAG([(i, i + 1) for i in range(10)])
        assert chain.depth() == 10

    def test_depth_of_edgeless(self):
        assert ComputationDAG(nodes=[1, 2]).depth() == 0

    def test_relabel(self):
        dag = diamond().relabel({"a": "A", "d": "D"})
        assert dag.sources == {"A"}
        assert dag.sinks == {"D"}
        assert dag.n_edges == 4

    def test_relabel_rejects_collision(self):
        with pytest.raises(GraphError):
            diamond().relabel({"a": "b"})


class TestNetworkxInterop:
    def test_round_trip(self):
        dag = diamond()
        g = dag.to_networkx()
        back = ComputationDAG.from_networkx(g)
        assert set(back.edges()) == set(dag.edges())
        assert set(back.nodes) == set(dag.nodes)

    def test_topological_order_agrees_with_networkx_validity(self):
        dag = diamond()
        g = dag.to_networkx()
        assert nx.is_directed_acyclic_graph(g)
        pos = {v: i for i, v in enumerate(dag.topological_order())}
        for u, v in g.edges():
            assert pos[u] < pos[v]

    def test_max_indegree_agrees_with_networkx(self):
        dag = diamond()
        g = dag.to_networkx()
        assert dag.max_indegree == max(d for _, d in g.in_degree())
