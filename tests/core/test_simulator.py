"""Tests for the schedule simulator and cost accounting."""

from fractions import Fraction

import pytest

from repro import (
    ComputationDAG,
    Compute,
    Delete,
    IllegalMoveError,
    IncompletePebblingError,
    InfeasibleInstanceError,
    Load,
    Model,
    PebblingInstance,
    PebblingSimulator,
    Schedule,
    Store,
)


@pytest.fixture
def chain3():
    return ComputationDAG([("a", "b"), ("b", "c")])


def make_sim(dag, model="base", R=3, **kw):
    return PebblingSimulator(PebblingInstance(dag=dag, model=model, red_limit=R, **kw))


class TestExecution:
    def test_free_pebbling_has_zero_cost(self, chain3):
        sim = make_sim(chain3, R=2)
        res = sim.run(
            [Compute("a"), Compute("b"), Delete("a"), Compute("c")],
            require_complete=True,
        )
        assert res.cost == 0
        assert res.complete
        assert res.max_red_in_use == 2

    def test_transfer_costs_counted(self, chain3):
        sim = make_sim(chain3, R=2)
        schedule = [
            Compute("a"),
            Compute("b"),
            Store("a"),      # 1
            Compute("c"),
            Load("a"),       # 1  (pointless but legal; b still red? no: R=2...)
        ]
        # After Store(a): red={b}, blue={a}; Compute(c): red={b,c}; Load(a) would
        # exceed R=2, so build a legal variant instead:
        schedule = [
            Compute("a"),
            Compute("b"),
            Store("a"),
            Compute("c"),
            Delete("b"),
            Load("a"),
        ]
        res = sim.run(schedule, require_complete=True)
        assert res.cost == 2
        assert res.breakdown.loads == 1
        assert res.breakdown.stores == 1

    def test_illegal_move_reports_step_index(self, chain3):
        sim = make_sim(chain3)
        with pytest.raises(IllegalMoveError) as err:
            sim.run([Compute("a"), Compute("c")])
        assert err.value.step == 1

    def test_require_complete_raises_on_unpebbled_sink(self, chain3):
        sim = make_sim(chain3)
        with pytest.raises(IncompletePebblingError):
            sim.run([Compute("a")], require_complete=True)

    def test_incomplete_flag_without_raise(self, chain3):
        sim = make_sim(chain3)
        res = sim.run([Compute("a")])
        assert not res.complete

    def test_accepts_schedule_object(self, chain3):
        sim = make_sim(chain3, R=3)
        res = sim.run(Schedule([Compute("a"), Compute("b"), Compute("c")]))
        assert res.complete and res.steps == 3

    def test_empty_schedule_on_sink_free_dag(self):
        dag = ComputationDAG(nodes=[])
        sim = make_sim(dag, R=1)
        res = sim.run([], require_complete=True)
        assert res.cost == 0 and res.steps == 0

    def test_cost_of_shortcut(self, chain3):
        sim = make_sim(chain3, R=3)
        assert sim.cost_of([Compute("a"), Compute("b"), Compute("c")]) == 0


class TestModelSpecificExecution:
    def test_compcost_total_includes_computes(self, chain3):
        sim = make_sim(chain3, model="compcost", R=3)
        res = sim.run([Compute("a"), Compute("b"), Compute("c")], require_complete=True)
        assert res.cost == Fraction(3, 100)
        assert res.transfer_cost == 0

    def test_compcost_custom_epsilon(self, chain3):
        sim = make_sim(chain3, model="compcost", R=3, epsilon=Fraction(1, 2))
        res = sim.run([Compute("a"), Compute("b"), Compute("c")])
        assert res.cost == Fraction(3, 2)

    def test_oneshot_rejects_recompute_in_schedule(self, chain3):
        sim = make_sim(chain3, model="oneshot", R=3)
        with pytest.raises(IllegalMoveError):
            sim.run([Compute("a"), Delete("a"), Compute("a")])

    def test_nodel_rejects_delete_in_schedule(self, chain3):
        sim = make_sim(chain3, model="nodel", R=3)
        with pytest.raises(IllegalMoveError):
            sim.run([Compute("a"), Delete("a")])

    def test_nodel_chain_needs_stores(self, chain3):
        # With R=2 in nodel, the red pebble on 'a' must be stored (not
        # deleted) before 'c' can be computed.
        sim = make_sim(chain3, model="nodel", R=2)
        res = sim.run(
            [Compute("a"), Compute("b"), Store("a"), Compute("c")],
            require_complete=True,
        )
        assert res.cost == 1


class TestInstance:
    def test_infeasible_red_limit_rejected(self, chain3):
        with pytest.raises(InfeasibleInstanceError):
            PebblingInstance(dag=chain3, model="base", red_limit=1)

    def test_minimum_feasible_red_limit_accepted(self, chain3):
        inst = PebblingInstance(dag=chain3, model="base", red_limit=2)
        assert inst.red_limit == chain3.min_red_pebbles

    def test_with_red_limit(self, chain3):
        inst = PebblingInstance(dag=chain3, model="base", red_limit=2)
        assert inst.with_red_limit(5).red_limit == 5

    def test_with_model(self, chain3):
        inst = PebblingInstance(dag=chain3, model="base", red_limit=2)
        inst2 = inst.with_model("oneshot")
        assert inst2.model is Model.ONESHOT
        assert not inst2.costs.recompute_allowed

    def test_model_string_coerced(self, chain3):
        inst = PebblingInstance(dag=chain3, model="nodel", red_limit=2)
        assert inst.model is Model.NODEL

    def test_describe_mentions_parameters(self, chain3):
        inst = PebblingInstance(dag=chain3, model="base", red_limit=2, cost_budget=7)
        text = inst.describe()
        assert "R=2" in text and "base" in text and "C<=7" in text


class TestTrace:
    def test_trace_reports_cumulative_cost(self, chain3):
        sim = make_sim(chain3, R=2)
        trace = sim.trace(
            [Compute("a"), Compute("b"), Store("a"), Compute("c")]
        )
        assert [t[2] for t in trace] == [0, 0, 1, 1]
        # final state of the trace pebbles the sink
        assert trace[-1][1].has_pebble("c")

    def test_trace_length(self, chain3):
        sim = make_sim(chain3, R=3)
        assert len(sim.trace([Compute("a")])) == 1
