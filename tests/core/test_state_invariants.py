"""Coverage for PebblingState invariants, canonical hash/eq, conversions.

ISSUE 2 satellite: ``check_invariants`` was previously untested beyond two
happy-path asserts, and ``__hash__``/``__eq__`` are now documented as
canonical over the ``(red, blue, computed)`` triple — consistent with the
bitmask encoding.  These tests pin that contract at the unit level (the
hypothesis differential suite covers it statistically).
"""

import pytest

from repro import ComputationDAG, PebblingState, bit_layout
from repro.core.bitstate import BitState


@pytest.fixture
def dag():
    return ComputationDAG([("a", "c"), ("b", "c")])


def make(red=(), blue=(), computed=()):
    return PebblingState(frozenset(red), frozenset(blue), frozenset(computed))


class TestCheckInvariants:
    def test_legal_state_passes(self, dag):
        make(red={"a"}, blue={"b"}, computed={"a", "b"}).check_invariants(dag)

    def test_double_pebble_caught(self):
        with pytest.raises(AssertionError, match="both a red and a blue"):
            make(red={"a"}, blue={"a"}, computed={"a"}).check_invariants()

    def test_uncomputed_red_pebble_caught(self):
        with pytest.raises(AssertionError, match="never computed"):
            make(red={"a"}).check_invariants()

    def test_uncomputed_blue_pebble_caught(self):
        with pytest.raises(AssertionError, match="never computed"):
            make(blue={"a"}).check_invariants()

    def test_foreign_node_caught_with_dag(self, dag):
        state = make(red={"zz"}, computed={"zz"})
        state.check_invariants()  # structurally fine without a DAG...
        with pytest.raises(AssertionError, match="outside the DAG"):
            state.check_invariants(dag)  # ...but inconsistent with one

    def test_bitstate_invariants_mirror(self, dag):
        layout = bit_layout(dag)
        make(red={"a"}, computed={"a"}).to_bits(layout).check_invariants(layout)
        with pytest.raises(AssertionError, match="both a red and a blue"):
            BitState(1, 1, 1).check_invariants(layout)
        with pytest.raises(AssertionError, match="never computed"):
            BitState(1, 0, 0).check_invariants(layout)
        with pytest.raises(AssertionError, match="outside the layout"):
            BitState(0, 0, 1 << layout.n).check_invariants(layout)


class TestCanonicalHashEq:
    def test_equality_is_triple_equality(self):
        a = make(red={"a"}, computed={"a", "b"})
        b = make(red={"a"}, computed={"a", "b"})
        c = make(red={"a"}, computed={"a"})
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_comparison_with_foreign_types_is_not_implemented(self):
        state = make(red={"a"}, computed={"a"})
        assert state.__eq__("not a state") is NotImplemented
        # python falls back to identity for == / in
        assert state != "not a state"
        assert state in {state}

    def test_hash_consistent_across_construction_orders(self):
        a = PebblingState(frozenset(["a", "b"]), frozenset(), frozenset(["a", "b"]))
        b = PebblingState(frozenset(["b", "a"]), frozenset(), frozenset(["b", "a"]))
        assert a == b and hash(a) == hash(b)

    def test_encoding_preserves_identity(self, dag):
        layout = bit_layout(dag)
        a = make(red={"a"}, blue={"b"}, computed={"a", "b"})
        b = make(red={"a"}, blue={"b"}, computed={"a", "b", "c"})
        ea, eb = a.to_bits(layout), b.to_bits(layout)
        assert ea != eb  # differ only in computed history
        assert PebblingState.from_bits(layout, ea) == a
        assert PebblingState.from_bits(layout, eb) == b


class TestLayoutCache:
    def test_layout_cached_per_dag(self, dag):
        assert bit_layout(dag) is bit_layout(dag)

    def test_layout_matches_topological_order(self, dag):
        layout = bit_layout(dag)
        assert layout.nodes == dag.topological_order()
        assert layout.index[layout.nodes[0]] == 0
        # sinks/sources masks decode back to the DAG's partitions
        assert layout.decode_set(layout.sink_mask) == dag.sinks
        assert layout.decode_set(layout.source_mask) == dag.sources
