"""Tests for the independent schedule auditor."""

import pytest

from repro import (
    ComputationDAG,
    Compute,
    Delete,
    Load,
    PebblingInstance,
    PebblingSimulator,
    Store,
    validate_schedule,
)


@pytest.fixture
def inst():
    dag = ComputationDAG([("a", "c"), ("b", "c")])
    return PebblingInstance(dag=dag, model="oneshot", red_limit=3)


GOOD = [Compute("a"), Compute("b"), Compute("c")]


class TestValidation:
    def test_valid_schedule_passes(self, inst):
        report = validate_schedule(inst, GOOD)
        assert report.ok
        assert report.cost == 0
        assert report.violations == []
        report.raise_if_invalid()

    def test_incomplete_schedule_fails(self, inst):
        report = validate_schedule(inst, [Compute("a")])
        assert not report.ok
        assert report.unpebbled_sinks == ("c",)
        with pytest.raises(AssertionError):
            report.raise_if_invalid()

    def test_illegal_compute_recorded_and_skipped(self, inst):
        # c computed before its inputs: violation, then the audit continues.
        report = validate_schedule(inst, [Compute("c")] + GOOD)
        assert not report.ok
        assert any("non-red input" in v for v in report.violations)

    def test_oneshot_recompute_flagged(self, inst):
        report = validate_schedule(
            inst, GOOD + [Delete("a"), Compute("a")]
        )
        assert any("recomputes" in v for v in report.violations)

    def test_nodel_delete_flagged(self, inst):
        nodel = inst.with_model("nodel")
        report = validate_schedule(nodel, GOOD + [Delete("a")])
        assert any("forbidden" in v for v in report.violations)

    def test_capacity_violation_flagged(self):
        dag = ComputationDAG(nodes=["x", "y", "z"])
        small = PebblingInstance(dag=dag, model="base", red_limit=2)
        report = validate_schedule(
            small, [Compute("x"), Compute("y"), Compute("z")]
        )
        assert any("exceeds R=2" in v for v in report.violations)

    def test_load_store_bookkeeping(self, inst):
        schedule = GOOD + [Store("a"), Load("a")]
        report = validate_schedule(inst, schedule)
        assert report.ok
        assert report.cost == 2

    def test_unknown_node_flagged(self, inst):
        report = validate_schedule(inst, [Compute("nope")])
        assert any("unknown node" in v for v in report.violations)

    def test_compute_counts_recorded(self, inst):
        base = inst.with_model("base")
        schedule = GOOD + [Delete("a"), Compute("a")]
        report = validate_schedule(base, schedule)
        assert report.compute_counts["a"] == 2

    def test_multiple_violations_all_reported(self, inst):
        report = validate_schedule(inst, [Load("a"), Store("a"), Delete("a")])
        assert len(report.violations) == 3


class TestValidatorAgreesWithSimulator:
    """The auditor and the simulator are independent implementations; they
    must price identical legal schedules identically."""

    @pytest.mark.parametrize("model", ["base", "oneshot", "nodel", "compcost"])
    def test_costs_agree(self, model):
        dag = ComputationDAG([("a", "b"), ("b", "c")])
        inst = PebblingInstance(dag=dag, model=model, red_limit=2)
        schedule = [Compute("a"), Compute("b"), Store("a"), Compute("c")]
        sim_cost = PebblingSimulator(inst).run(schedule, require_complete=True).cost
        report = validate_schedule(inst, schedule)
        assert report.ok
        assert report.cost == sim_cost
