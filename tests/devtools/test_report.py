"""The JSON report schema is versioned and pinned here.

CI consumers parse ``repro-pebble check --format json``; growing the
payload is fine, renaming or removing keys is a breaking change that
must bump ``JSON_FORMAT``.
"""

import json
from pathlib import Path

import pytest

from repro.devtools import (
    RepoIndex,
    all_rules,
    get_rule,
    render_json,
    render_text,
    run_check,
)
from repro.devtools.report import JSON_FORMAT, Finding, Fix

FIXTURES = Path(__file__).resolve().parent / "fixtures"

_FINDING = Finding(
    rule="RP001",
    severity="error",
    path="src/repro/solvers/batch_kernel.py",
    line=12,
    col=4,
    message="example",
)

_FIXABLE = Finding(
    rule="RP012",
    severity="error",
    path="src/repro/solvers/kernel.py",
    line=3,
    col=8,
    message="fixable example",
    fix=Fix(line=3, col=8, end_line=3, end_col=11, replacement="1"),
)


def test_json_schema_is_stable():
    payload = json.loads(render_json([_FINDING], checked_rules=all_rules()))
    assert payload["format"] == JSON_FORMAT == "repro-pebble/check/v1"
    assert set(payload) == {"format", "ok", "rules", "findings", "counts"}
    assert payload["ok"] is False
    assert payload["counts"] == {"RP001": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {
        "rule", "severity", "path", "line", "col", "message", "fix",
    }
    assert finding["fix"] is None
    for rule in payload["rules"]:
        assert set(rule) == {
            "id", "name", "severity", "autofixable", "scope", "description",
        }


def test_json_fix_payload():
    payload = json.loads(render_json([_FIXABLE], checked_rules=all_rules()))
    (finding,) = payload["findings"]
    assert finding["fix"] == {
        "line": 3, "col": 8, "end_line": 3, "end_col": 11, "replacement": "1",
    }


def test_json_clean_run_is_ok():
    payload = json.loads(render_json([], checked_rules=all_rules()))
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["counts"] == {}


def test_text_report_lines():
    text = render_text([_FINDING], checked_rules=all_rules())
    first, summary = text.splitlines()
    assert first == (
        "src/repro/solvers/batch_kernel.py:12:4 RP001 [error] example"
    )
    assert "1 finding(s)" in summary and "RP001=1" in summary
    fixable_line = render_text([_FIXABLE], checked_rules=all_rules()).splitlines()[0]
    assert fixable_line.endswith("(autofixable)")
    clean = render_text([], checked_rules=all_rules())
    assert clean == "clean: 13 rule(s), 0 findings"


# --------------------------------------------------------------------- #
# golden JSON reports: one per dataflow rule, byte-for-byte
# --------------------------------------------------------------------- #

_GOLDEN_CASES = {
    "RP007": (FIXTURES, ["rp007_leaks.py"]),
    "RP008": (FIXTURES / "rp008_contract", None),
    "RP009": (FIXTURES, ["rp009_shared.py"]),
    "RP010": (FIXTURES / "rp010_protocol", None),
    "RP011": (FIXTURES, ["rp011_dupes.py"]),
    "RP012": (FIXTURES, ["rp012_floats.py"]),
}


@pytest.mark.parametrize("rule_id", sorted(_GOLDEN_CASES))
def test_golden_json_report(rule_id):
    root, paths = _GOLDEN_CASES[rule_id]
    rule = get_rule(rule_id)
    findings = run_check(RepoIndex(root, paths=paths), rules=[rule])
    assert findings, f"{rule_id} fixture must produce findings"
    rendered = render_json(findings, checked_rules=[rule]) + "\n"
    golden = FIXTURES / "golden" / f"{rule_id.lower()}.json"
    assert rendered == golden.read_text(encoding="utf-8")
