"""The JSON report schema is versioned and pinned here.

CI consumers parse ``repro-pebble check --format json``; growing the
payload is fine, renaming or removing keys is a breaking change that
must bump ``JSON_FORMAT``.
"""

import json

from repro.devtools import all_rules, render_json, render_text
from repro.devtools.report import JSON_FORMAT, Finding

_FINDING = Finding(
    rule="RP001",
    severity="error",
    path="src/repro/solvers/batch_kernel.py",
    line=12,
    col=4,
    message="example",
)


def test_json_schema_is_stable():
    payload = json.loads(render_json([_FINDING], checked_rules=all_rules()))
    assert payload["format"] == JSON_FORMAT == "repro-pebble/check/v1"
    assert set(payload) == {"format", "ok", "rules", "findings", "counts"}
    assert payload["ok"] is False
    assert payload["counts"] == {"RP001": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "severity", "path", "line", "col", "message"}
    for rule in payload["rules"]:
        assert set(rule) == {
            "id", "name", "severity", "autofixable", "scope", "description",
        }


def test_json_clean_run_is_ok():
    payload = json.loads(render_json([], checked_rules=all_rules()))
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["counts"] == {}


def test_text_report_lines():
    text = render_text([_FINDING], checked_rules=all_rules())
    first, summary = text.splitlines()
    assert first == (
        "src/repro/solvers/batch_kernel.py:12:4 RP001 [error] example"
    )
    assert "1 finding(s)" in summary and "RP001=1" in summary
    clean = render_text([], checked_rules=all_rules())
    assert clean == "clean: 6 rule(s), 0 findings"
