"""Unit tests for the dataflow layer behind RP007-RP012.

Covers the statement-level CFG (branching, loops, abrupt exits,
try/finally routing), reaching definitions / use-def chains, the
repo-wide call graph with import resolution, the exception-propagation
fixpoint with try/except masking, and the worker-side partition of a
process-spawning module.
"""

import ast
import textwrap

import pytest

from repro.devtools import RepoIndex
from repro.devtools.analysis import (
    CFG,
    build_call_graph,
    build_cfg,
    class_hierarchy,
    exception_ancestors,
    exception_propagation,
    process_targets,
    reaching_definitions,
    use_def,
    worker_side_functions,
)


def _func(source):
    tree = ast.parse(textwrap.dedent(source))
    return next(
        n for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )


def _cfg(source, **kwargs):
    return build_cfg(_func(source), **kwargs)


def _node_of(cfg, needle):
    """The CFG node whose statement's source line contains ``needle``."""
    for nid, stmt in enumerate(cfg.stmts):
        if stmt is not None and needle in ast.unparse(stmt).splitlines()[0]:
            return nid
    raise AssertionError(f"no CFG node matches {needle!r}")


def _reaches(cfg, start, goal):
    seen, stack = set(), [start]
    while stack:
        nid = stack.pop()
        if nid == goal:
            return True
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(cfg.succ[nid])
    return False


# --------------------------------------------------------------------- #
# CFG construction
# --------------------------------------------------------------------- #


def test_cfg_straight_line():
    cfg = _cfg("""
        def f(x):
            a = x + 1
            b = a * 2
            return b
    """)
    a, b, ret = _node_of(cfg, "a ="), _node_of(cfg, "b ="), _node_of(cfg, "return")
    assert cfg.succ[CFG.ENTRY] == {a}
    assert cfg.succ[a] == {b}
    assert cfg.succ[b] == {ret}
    assert cfg.succ[ret] == {CFG.EXIT}


def test_cfg_if_branches_merge():
    cfg = _cfg("""
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
    """)
    test = _node_of(cfg, "if x")
    then, other = _node_of(cfg, "a = 1"), _node_of(cfg, "a = 2")
    ret = _node_of(cfg, "return")
    assert cfg.succ[test] == {then, other}
    assert cfg.succ[then] == cfg.succ[other] == {ret}


def test_cfg_if_without_else_falls_through():
    cfg = _cfg("""
        def f(x):
            if x:
                return 1
            return 2
    """)
    test = _node_of(cfg, "if x")
    early, late = _node_of(cfg, "return 1"), _node_of(cfg, "return 2")
    assert cfg.succ[test] == {early, late}
    assert cfg.succ[early] == {CFG.EXIT}


def test_cfg_raise_goes_to_raise_exit_not_exit():
    cfg = _cfg("""
        def f(x):
            if x:
                raise ValueError(x)
            return x
    """)
    rse = _node_of(cfg, "raise")
    assert cfg.succ[rse] == {CFG.RAISE_EXIT}
    assert not _reaches(cfg, rse, CFG.EXIT)


def test_cfg_while_true_exits_only_via_break():
    cfg = _cfg("""
        def f(conn):
            while True:
                msg = conn.recv()
                if msg is None:
                    break
                conn.send(msg)
            conn.close()
    """)
    head = _node_of(cfg, "while True")
    brk = _node_of(cfg, "break")
    close = _node_of(cfg, "conn.close")
    # the loop head never falls through; only break reaches the close
    assert close not in cfg.succ[head]
    assert cfg.succ[brk] == {close}


def test_cfg_loop_test_can_fail_on_entry():
    cfg = _cfg("""
        def f(items):
            for x in items:
                use(x)
            return 0
    """)
    head, ret = _node_of(cfg, "for x"), _node_of(cfg, "return")
    assert ret in cfg.succ[head]
    body = _node_of(cfg, "use(x)")
    assert head in cfg.succ[body]  # back edge


def test_cfg_return_routes_through_finally():
    cfg = _cfg("""
        def f(conn):
            try:
                return conn.recv()
            finally:
                conn.close()
    """)
    ret = _node_of(cfg, "return")
    close = _node_of(cfg, "conn.close")
    # the return does NOT go straight to EXIT: the finally runs first
    assert cfg.succ[ret] == {close}
    assert CFG.EXIT in cfg.succ[close]


def test_cfg_exception_edges_flag():
    src = """
        def f(x):
            try:
                a = risky(x)
            except ValueError:
                a = 0
            return a
    """
    plain, with_exc = _cfg(src), _cfg(src, exception_edges=True)
    risky_p = _node_of(plain, "a = risky")
    handler_p = _node_of(plain, "a = 0")
    assert handler_p not in plain.succ[risky_p]
    risky_e = _node_of(with_exc, "a = risky")
    handler_e = _node_of(with_exc, "a = 0")
    assert handler_e in with_exc.succ[risky_e]


def test_cfg_nodes_for_and_preds_are_consistent():
    cfg = _cfg("""
        def f(x):
            y = x
            return y
    """)
    y = _node_of(cfg, "y = x")
    assert cfg.nodes_for(cfg.stmts[y]) == [y]
    assert y in cfg.preds()[_node_of(cfg, "return")]


# --------------------------------------------------------------------- #
# reaching definitions / use-def
# --------------------------------------------------------------------- #


def test_reaching_definitions_params_defined_at_entry():
    cfg = _cfg("""
        def f(x, *rest, **opts):
            return x
    """)
    ins = reaching_definitions(cfg)
    ret = _node_of(cfg, "return")
    assert {("x", CFG.ENTRY), ("rest", CFG.ENTRY), ("opts", CFG.ENTRY)} <= ins[ret]


def test_reaching_definitions_rebinding_kills():
    cfg = _cfg("""
        def f(x):
            x = 1
            x = 2
            return x
    """)
    ins = reaching_definitions(cfg)
    second = _node_of(cfg, "x = 2")
    defs_at_return = {d for d in ins[_node_of(cfg, "return")] if d[0] == "x"}
    assert defs_at_return == {("x", second)}


def test_reaching_definitions_branches_merge():
    cfg = _cfg("""
        def f(c):
            if c:
                a = 1
            else:
                a = 2
            return a
    """)
    ins = reaching_definitions(cfg)
    one, two = _node_of(cfg, "a = 1"), _node_of(cfg, "a = 2")
    defs = {d for d in ins[_node_of(cfg, "return")] if d[0] == "a"}
    assert defs == {("a", one), ("a", two)}


def test_use_def_chains():
    cfg = _cfg("""
        def f(c):
            a = 1
            if c:
                a = 2
            b = a + 1
            return b
    """)
    chains = use_def(cfg)
    use = _node_of(cfg, "b = a + 1")
    assert chains[use]["a"] == {_node_of(cfg, "a = 1"), _node_of(cfg, "a = 2")}
    test = _node_of(cfg, "if c")
    assert chains[test]["c"] == {CFG.ENTRY}


# --------------------------------------------------------------------- #
# call graph + exception propagation (on a miniature indexed tree)
# --------------------------------------------------------------------- #


@pytest.fixture()
def mini_index(tmp_path):
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "util.py").write_text(textwrap.dedent("""
        class AppError(Exception):
            pass


        class DeepError(AppError):
            pass


        def helper(kind):
            if kind == "deep":
                raise DeepError(kind)
            raise KeyError(kind)


        class Gadget:
            def __init__(self, n):
                if n < 0:
                    raise OverflowError(n)
                self.n = n

            def run(self):
                return self.spin()

            def spin(self):
                raise TimeoutError("spin")
    """), encoding="utf-8")
    (pkg / "main.py").write_text(textwrap.dedent("""
        from pkg import util
        from pkg.util import Gadget, helper


        def entry(kind):
            return helper(kind)


        def masked(kind):
            try:
                return helper(kind)
            except LookupError:
                return None


        def reraising(kind):
            try:
                return helper(kind)
            except KeyError:
                raise


        def via_alias(kind):
            return util.helper(kind)


        def builds():
            return Gadget(3)
    """), encoding="utf-8")
    return RepoIndex(tmp_path, paths=["src"])


def test_call_graph_resolution(mini_index):
    graph = build_call_graph(mini_index)
    calls = graph.calls
    main, util = "src/pkg/main.py", "src/pkg/util.py"
    assert calls[f"{main}::entry"] == {f"{util}::helper"}
    # module-alias attribute calls resolve too
    assert calls[f"{main}::via_alias"] == {f"{util}::helper"}
    # class instantiation resolves to __init__
    assert calls[f"{main}::builds"] == {f"{util}::Gadget.__init__"}
    # self.method calls resolve within the class
    assert calls[f"{util}::Gadget.run"] == {f"{util}::Gadget.spin"}


def test_class_hierarchy_and_ancestors(mini_index):
    hierarchy = class_hierarchy(mini_index)
    assert hierarchy["DeepError"] == ("AppError",)
    assert exception_ancestors("DeepError", hierarchy) == {
        "AppError", "Exception", "BaseException",
    }
    # builtins come from the baked-in table
    assert "LookupError" in exception_ancestors("KeyError", hierarchy)
    # unknown names default to plain Exception
    assert exception_ancestors("Mystery", hierarchy) == {
        "Exception", "BaseException",
    }


def test_exception_propagation(mini_index):
    raised = exception_propagation(mini_index)
    main, util = "src/pkg/main.py", "src/pkg/util.py"
    # direct seeding at the raise sites
    assert set(raised[f"{util}::helper"]) == {"DeepError", "KeyError"}
    # transitive propagation to the caller, sites kept at the origin
    entry = raised[f"{main}::entry"]
    assert set(entry) == {"DeepError", "KeyError"}
    assert entry["KeyError"].path == util
    # except LookupError masks KeyError but not the unrelated DeepError
    assert set(raised[f"{main}::masked"]) == {"DeepError"}
    # a bare-raise handler does not mask (and seeds nothing new)
    assert set(raised[f"{main}::reraising"]) == {"DeepError", "KeyError"}
    # methods raise too
    assert set(raised[f"{util}::Gadget.run"]) == {"TimeoutError"}
    assert set(raised[f"{main}::builds"]) == {"OverflowError"}


# --------------------------------------------------------------------- #
# worker-side partition
# --------------------------------------------------------------------- #


def test_worker_side_functions(tmp_path):
    (tmp_path / "mod.py").write_text(textwrap.dedent("""
        import multiprocessing as mp


        def _leaf(x):
            return x


        def _worker(conn):
            _leaf(conn.recv())


        def _parent_only():
            return _leaf(1)


        def start(ctx):
            return mp.Process(target=_worker, args=(ctx,))
    """), encoding="utf-8")
    index = RepoIndex(tmp_path, paths=["mod.py"])
    module = index.module("mod.py")
    assert process_targets(module) == {"_worker"}
    # the transitive callee _leaf joins the worker side; start stays parent
    assert worker_side_functions(module) == {"_worker", "_leaf"}
