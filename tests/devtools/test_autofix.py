"""The span-based autofix engine: spans, overlaps, noqa fixes, fix_all."""

import textwrap
from pathlib import Path

from repro.devtools import (
    RepoIndex,
    apply_baseline,
    apply_fixes,
    fix_all,
    get_rule,
    load_baseline,
    run_check,
    save_baseline,
)
from repro.devtools.fix import unused_noqa_fix
from repro.devtools.report import Finding, Fix

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _index_with(tmp_path, source, name="mod.py"):
    (tmp_path / name).write_text(textwrap.dedent(source), encoding="utf-8")
    return RepoIndex(tmp_path, paths=[name])


def _finding(path, fix):
    return Finding(
        rule="RP012", severity="error", path=path,
        line=fix.line, col=fix.col, message="x", fix=fix,
    )


# --------------------------------------------------------------------- #
# apply_fixes span mechanics
# --------------------------------------------------------------------- #


def test_apply_fixes_rewrites_spans(tmp_path):
    index = _index_with(tmp_path, "cost = 1.0\nbound = 2.0\n")
    applied = apply_fixes(index, [
        _finding("mod.py", Fix(1, 7, 1, 10, "1")),
        _finding("mod.py", Fix(2, 8, 2, 11, "2")),
    ])
    assert applied == {"mod.py": 2}
    assert (tmp_path / "mod.py").read_text(encoding="utf-8") == (
        "cost = 1\nbound = 2\n"
    )


def test_apply_fixes_multiple_spans_on_one_line(tmp_path):
    index = _index_with(tmp_path, "g = 1.0 + 2.0\n")
    applied = apply_fixes(index, [
        _finding("mod.py", Fix(1, 4, 1, 7, "1")),
        _finding("mod.py", Fix(1, 10, 1, 13, "2")),
    ])
    assert applied == {"mod.py": 2}
    assert (tmp_path / "mod.py").read_text(encoding="utf-8") == "g = 1 + 2\n"


def test_apply_fixes_drops_overlaps_for_the_next_round(tmp_path):
    index = _index_with(tmp_path, "value = 123456\n")
    applied = apply_fixes(index, [
        _finding("mod.py", Fix(1, 8, 1, 12, "9")),
        _finding("mod.py", Fix(1, 10, 1, 14, "8")),  # overlaps: dropped
    ])
    assert applied == {"mod.py": 1}
    assert (tmp_path / "mod.py").read_text(encoding="utf-8") == "value = 956\n"


def test_apply_fixes_ignores_unindexed_paths(tmp_path):
    index = _index_with(tmp_path, "x = 1\n")
    applied = apply_fixes(index, [
        _finding("elsewhere.py", Fix(1, 0, 1, 1, "y")),
    ])
    assert applied == {}


# --------------------------------------------------------------------- #
# the unused-noqa fix shapes
# --------------------------------------------------------------------- #


def _noqa_fix_applied(tmp_path, line_text, rule_id):
    index = _index_with(tmp_path, line_text)
    module = index.module("mod.py")
    fix = unused_noqa_fix(module, 1, rule_id)
    assert fix is not None
    apply_fixes(index, [_finding("mod.py", fix)])
    return (tmp_path / "mod.py").read_text(encoding="utf-8")


def test_noqa_fix_removes_one_id_from_a_comma_list(tmp_path):
    out = _noqa_fix_applied(tmp_path, "x = 1  # noqa: RP001, RP003\n", "RP001")
    assert out == "x = 1  # noqa: RP003\n"


def test_noqa_fix_removes_a_trailing_id(tmp_path):
    out = _noqa_fix_applied(tmp_path, "x = 1  # noqa: RP001, RP003\n", "RP003")
    assert out == "x = 1  # noqa: RP001\n"


def test_noqa_fix_removes_a_single_id_comment(tmp_path):
    out = _noqa_fix_applied(tmp_path, "x = 1  # noqa: RP001\n", "RP001")
    assert out == "x = 1\n"


def test_noqa_fix_removes_a_bare_comment_line(tmp_path):
    out = _noqa_fix_applied(tmp_path, "# noqa: RP001\nx = 1\n", "RP001")
    assert out == "x = 1\n"


# --------------------------------------------------------------------- #
# the fix -> re-check loop
# --------------------------------------------------------------------- #


def _copy_fixture(tmp_path, name):
    (tmp_path / "src").mkdir(exist_ok=True)
    target = tmp_path / "src" / name
    target.write_text((FIXTURES / name).read_text(encoding="utf-8"),
                      encoding="utf-8")
    return target


def test_fix_all_converges_on_the_autofixable_fixtures(tmp_path):
    _copy_fixture(tmp_path, "rp011_dupes.py")
    _copy_fixture(tmp_path, "rp012_floats.py")
    rules = [get_rule("RP011"), get_rule("RP012")]
    fixed, leftover = fix_all(tmp_path, rules)
    assert fixed == 7
    assert leftover == []
    index = RepoIndex(tmp_path)
    assert run_check(index, rules=rules) == []
    # second pass: nothing left to rewrite
    assert fix_all(tmp_path, rules) == (0, [])


def test_fix_all_fixes_unused_noqa(tmp_path):
    (tmp_path / "src").mkdir()
    mod = tmp_path / "src" / "mod.py"
    mod.write_text(
        '"""devtools: packed-state"""\n'
        "\n"
        "\n"
        "def f(g):\n"
        "    return g + 1  # noqa: RP012\n",
        encoding="utf-8",
    )
    rules = [get_rule("RP000"), get_rule("RP012")]
    fixed, leftover = fix_all(tmp_path, rules)
    assert fixed == 1
    assert leftover == []
    assert "noqa" not in mod.read_text(encoding="utf-8")


def test_fix_all_reports_unfixable_findings(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text(
        '"""devtools: packed-state"""\n'
        "\n"
        "\n"
        "def f(g):\n"
        "    bad_cost = g * 0.5\n"  # non-integral: no autofix
        "    return bad_cost\n",
        encoding="utf-8",
    )
    fixed, leftover = fix_all(tmp_path, [get_rule("RP012")])
    assert fixed == 0
    assert [f.rule for f in leftover] == ["RP012"]


# --------------------------------------------------------------------- #
# baseline round-trip
# --------------------------------------------------------------------- #


def test_baseline_roundtrip_multiset(tmp_path):
    f1 = Finding(rule="RP012", severity="error", path="a.py", line=3, col=0,
                 message="same")
    f2 = Finding(rule="RP012", severity="error", path="a.py", line=9, col=0,
                 message="same")
    path = tmp_path / "baseline.json"
    save_baseline(path, [f1, f2])
    baseline = load_baseline(path)
    # both occurrences covered; lines may drift without invalidating
    assert apply_baseline([f1, f2], baseline) == []
    shifted = Finding(rule="RP012", severity="error", path="a.py", line=40,
                      col=0, message="same")
    assert apply_baseline([f1, shifted], baseline) == []
    # a third occurrence of the same fingerprint is NEW drift
    third = Finding(rule="RP012", severity="error", path="a.py", line=50,
                    col=0, message="same")
    assert apply_baseline([f1, f2, third], baseline) == [third]
