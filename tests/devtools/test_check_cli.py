"""``repro-pebble check`` exit codes and output plumbing."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_check_is_green_on_the_repo(capsys):
    assert main(["check", "--root", str(REPO_ROOT)]) == 0
    assert "clean: 6 rule(s), 0 findings" in capsys.readouterr().out


@pytest.mark.parametrize(
    "tree", ["rp002_drift", "rp004_drift", "rp005_drift"]
)
def test_check_fails_on_each_drift_tree(tree, capsys):
    assert main(["check", "--root", str(FIXTURES / tree)]) == 1
    assert tree.split("_")[0].upper() in capsys.readouterr().out


def test_check_json_output(capsys):
    code = main([
        "check", "--root", str(FIXTURES / "rp004_drift"), "--format", "json",
    ])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "repro-pebble/check/v1"
    assert payload["ok"] is False
    assert payload["counts"] == {"RP004": 2}


def test_check_select_limits_the_rule_set(capsys):
    # the rp004 drift tree is clean under RP005 alone
    code = main([
        "check", "--root", str(FIXTURES / "rp004_drift"), "--select", "RP005",
    ])
    assert code == 0
    assert "1 rule(s)" in capsys.readouterr().out


def test_check_ignore_drops_a_rule():
    code = main([
        "check", "--root", str(FIXTURES / "rp004_drift"), "--ignore", "RP004",
    ])
    assert code == 0


def test_check_rejects_unknown_rule_ids():
    with pytest.raises(SystemExit, match="unknown rule"):
        main(["check", "--root", str(REPO_ROOT), "--select", "RP999"])


def test_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RP001", "RP002", "RP003", "RP004", "RP005", "RP006"):
        assert rule_id in out
    assert "[autofixable]" in out
