"""``repro-pebble check`` exit codes and output plumbing."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_check_is_green_on_the_repo(capsys):
    assert main(["check", "--root", str(REPO_ROOT)]) == 0
    assert "clean: 13 rule(s), 0 findings" in capsys.readouterr().out


@pytest.mark.parametrize(
    "tree",
    ["rp002_drift", "rp004_drift", "rp005_drift", "rp008_contract",
     "rp010_protocol"],
)
def test_check_fails_on_each_drift_tree(tree, capsys):
    assert main(["check", "--root", str(FIXTURES / tree)]) == 1
    assert tree.split("_")[0].upper() in capsys.readouterr().out


def test_check_json_output(capsys):
    code = main([
        "check", "--root", str(FIXTURES / "rp004_drift"), "--format", "json",
    ])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "repro-pebble/check/v1"
    assert payload["ok"] is False
    assert payload["counts"] == {"RP004": 2}


def test_check_select_limits_the_rule_set(capsys):
    # the rp004 drift tree is clean under RP005 alone
    code = main([
        "check", "--root", str(FIXTURES / "rp004_drift"), "--select", "RP005",
    ])
    assert code == 0
    assert "1 rule(s)" in capsys.readouterr().out


def test_check_ignore_drops_a_rule():
    code = main([
        "check", "--root", str(FIXTURES / "rp004_drift"), "--ignore", "RP004",
    ])
    assert code == 0


def test_check_rejects_unknown_rule_ids():
    with pytest.raises(SystemExit, match="unknown rule"):
        main(["check", "--root", str(REPO_ROOT), "--select", "RP999"])


def test_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for i in range(13):
        assert f"RP{i:03d}" in out
    assert "[autofixable]" in out


# --------------------------------------------------------------------- #
# --fix / --baseline / --changed-only plumbing
# --------------------------------------------------------------------- #


def _scratch_tree(tmp_path, *names):
    (tmp_path / "src").mkdir()
    for name in names:
        target = tmp_path / "src" / name
        target.write_text(
            (FIXTURES / name).read_text(encoding="utf-8"), encoding="utf-8"
        )
    return tmp_path


def test_check_fix_converges_and_is_idempotent(tmp_path, capsys):
    root = _scratch_tree(tmp_path, "rp011_dupes.py", "rp012_floats.py")
    args = ["check", "--root", str(root), "--select", "RP011",
            "--select", "RP012"]
    assert main(args) == 1
    capsys.readouterr()
    assert main([*args, "--fix"]) == 0
    out = capsys.readouterr().out
    assert "fixed: 7 finding(s) rewritten in place" in out
    assert "clean: 2 rule(s), 0 findings" in out
    before = (root / "src" / "rp011_dupes.py").read_text(encoding="utf-8")
    # a clean tree stays byte-identical under a second --fix pass
    assert main([*args, "--fix"]) == 0
    assert (root / "src" / "rp011_dupes.py").read_text(encoding="utf-8") == before
    assert "fixed:" not in capsys.readouterr().out


def test_check_baseline_roundtrip(tmp_path, capsys):
    root = _scratch_tree(tmp_path, "rp012_floats.py")
    baseline = tmp_path / "baseline.json"
    args = ["check", "--root", str(root), "--select", "RP012"]
    assert main([*args, "--baseline", str(baseline), "--update-baseline"]) == 0
    assert "5 finding(s) written" in capsys.readouterr().out
    # every current finding is baselined: the gate passes
    assert main([*args, "--baseline", str(baseline)]) == 0
    # new drift beyond the baseline still fails
    mod = root / "src" / "rp012_floats.py"
    mod.write_text(
        mod.read_text(encoding="utf-8") + "\n\nextra_cost = 9.0\n",
        encoding="utf-8",
    )
    capsys.readouterr()
    assert main([*args, "--baseline", str(baseline)]) == 1
    assert "extra_cost" in capsys.readouterr().out


def test_check_update_baseline_requires_baseline():
    with pytest.raises(SystemExit, match="--update-baseline requires"):
        main(["check", "--root", str(REPO_ROOT), "--update-baseline"])


def test_check_baseline_missing_file_errors(tmp_path):
    with pytest.raises(SystemExit, match="baseline"):
        main(["check", "--root", str(REPO_ROOT), "--baseline",
              str(tmp_path / "missing.json")])


def test_check_changed_only_outside_git_checks_everything(tmp_path):
    # not a git repo: --changed-only degrades to a full check
    root = _scratch_tree(tmp_path, "rp012_floats.py")
    assert main(["check", "--root", str(root), "--select", "RP012",
                 "--changed-only"]) == 1
