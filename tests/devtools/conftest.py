"""Keep the known-violation fixture trees out of pytest collection.

``fixtures/`` holds deliberately broken modules (and mini repo trees
whose files match ``test_*.py``); they are inputs to the analyzer's
tests, not tests themselves.
"""

collect_ignore = ["fixtures"]
