"""Each RPxxx rule fires on its known-violation fixture — and only there.

The fixtures live in ``tests/devtools/fixtures/`` (excluded from both
pytest collection and the analyzer's default scan).  Per-file rules get
a single deliberately broken module; the cross-file sync rules get
miniature repo trees with one injected drift each.
"""

from pathlib import Path

import pytest

from repro.devtools import RepoIndex, all_rules, get_rule, run_check, select_rules

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def _findings(root, rule_id, paths=None):
    index = RepoIndex(root, paths=paths)
    return run_check(index, rules=[get_rule(rule_id)])


# --------------------------------------------------------------------- #
# per-file rules: one broken module each
# --------------------------------------------------------------------- #


def test_rp001_fires_on_packed_fixture():
    found = _findings(FIXTURES, "RP001", paths=["rp001_packed.py"])
    assert len(found) == 5
    assert {f.rule for f in found} == {"RP001"}
    messages = " | ".join(f.message for f in found)
    assert "shifted by literal 64" in messages
    assert "65 bits" in messages
    assert "without an explicit dtype" in messages
    assert "int32" in messages
    assert "uint32" in messages
    # the canonical (1 << 64) - 1 mask idiom on line 5 is NOT flagged
    assert all(f.line != 5 for f in found)


def test_rp003_fires_on_fork_fixture():
    found = _findings(FIXTURES, "RP003", paths=["rp003_forks.py"])
    assert len(found) == 5
    messages = " | ".join(f.message for f in found)
    assert "lambda as process target" in messages
    assert "bound attribute" in messages
    assert "nested function" in messages
    assert "register_at_fork inside a function" in messages


def test_rp006_fires_on_flaky_fixture():
    found = _findings(FIXTURES, "RP006", paths=["rp006_flaky.py"])
    assert len(found) == 5
    messages = " | ".join(f.message for f in found)
    assert "unseeded global generator" in messages
    assert "numpy's unseeded global" in messages
    assert "wall clock" in messages
    assert "inside an assert" in messages


def test_rp007_fires_on_leak_fixture():
    found = _findings(FIXTURES, "RP007", paths=["rp007_leaks.py"])
    assert [(f.line, f.message.split("'")[1]) for f in found] == [
        (15, "conn"), (24, "child"), (30, "pool"),
    ]
    messages = " | ".join(f.message for f in found)
    # one finding per leaked name; the clean control idioms stay silent
    assert "sqlite3.connect(...)" in messages
    assert "Pipe(...)" in messages
    assert "Pool(...)" in messages
    assert "clean_" not in messages


def test_rp009_fires_on_shared_state_fixture():
    found = _findings(FIXTURES, "RP009", paths=["rp009_shared.py"])
    assert len(found) == 2
    messages = " | ".join(f.message for f in found)
    assert "_record() writes module-level mutable '_RESULTS'" in messages
    assert "_worker_loop() writes module-level mutable '_LIMITS'" in messages
    # the parent-side registry write is legal
    assert "_PARENT_REGISTRY" not in messages


def test_rp011_fires_on_duplicate_dispatch_fixture():
    found = _findings(FIXTURES, "RP011", paths=["rp011_dupes.py"])
    assert len(found) == 2
    assert all(f.fix is not None for f in found)
    messages = " | ".join(f.message for f in found)
    assert "`kind == 'chain'` already dispatched at line 11" in messages
    assert "`kind.startswith('tree:')` already dispatched at line 17" in messages


def test_rp012_fires_on_float_cost_fixture():
    found = _findings(FIXTURES, "RP012", paths=["rp012_floats.py"])
    assert len(found) == 5
    assert all(f.fix is not None for f in found)
    messages = " | ".join(f.message for f in found)
    for cost in ("'g'", "'best'", "'incumbent'", "'bound'"):
        assert cost in messages
    # the timing float in poll_interval() is not cost vocabulary
    assert "0.005" not in messages


# --------------------------------------------------------------------- #
# cross-file rules: miniature repo trees with injected drift
# --------------------------------------------------------------------- #


def test_rp002_fires_on_engine_drift_tree():
    found = _findings(FIXTURES / "rp002_drift", "RP002")
    messages = [f.message for f in found]
    assert any('engine "turbo" is dispatched' in m for m in messages)
    assert any('ENGINES lists "ghost"' in m for m in messages)
    assert any('"turbo" has no golden-optima coverage' in m for m in messages)
    assert any('"turbo" has no row' in m for m in messages)
    assert any('documents engine "retired"' in m for m in messages)
    assert len(found) == 5
    # covered engines produce no findings
    assert not any('"legacy"' in m or '"bits"' in m for m in messages)


def test_rp004_fires_on_registry_drift_tree():
    found = _findings(FIXTURES / "rp004_drift", "RP004")
    messages = [f.message for f in found]
    assert any('spec kind "mystery:"' in m for m in messages)
    assert any('method "secret:method"' in m for m in messages)
    assert len(found) == 2


def test_rp005_fires_on_service_drift_tree():
    found = _findings(FIXTURES / "rp005_drift", "RP005")
    messages = [f.message for f in found]
    assert any("418 is produced but has no _STATUS_PHRASES" in m
               for m in messages)
    assert any("418 can reach clients but is missing" in m for m in messages)
    assert any("documents status 404" in m for m in messages)
    assert len(found) == 3


def test_rp008_fires_on_contract_tree():
    found = _findings(FIXTURES / "rp008_contract", "RP008")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/solvers/engine.py", 14),
        ("src/repro/solvers/engine.py", 29),
    ]
    messages = " | ".join(f.message for f in found)
    assert "raise KeyError here can escape" in messages
    assert "raise RuntimeError here can escape" in messages
    assert "solve_fixture" in messages
    # ValueError and the PebblingError subclass are inside the contract,
    # and the LookupError-masked _probe() path is not flagged
    assert "ValueError here" not in messages
    assert "SolverError" not in messages


def test_rp010_fires_on_protocol_drift_tree():
    found = _findings(FIXTURES / "rp010_protocol", "RP010")
    messages = [f.message for f in found]
    assert any("sends pipe tag 'oops' that the router side never handles" in m
               for m in messages)
    assert any("sends pipe tag 'warp' that the worker side never handles" in m
               for m in messages)
    assert any("handles pipe tag 'trace' that no worker ever sends" in m
               for m in messages)
    assert any("pipe tag 'oops' (worker → parent) is not documented" in m
               for m in messages)
    assert any("pipe tag 'warp' (parent → worker) is not documented" in m
               for m in messages)
    assert any("documented pipe tag 'retired'" in m and "stale" in m
               for m in messages)
    assert len(found) == 6
    # the in-sync tags stay silent
    assert not any("'solve'" in m or "'bound'" in m or "'status'" in m
                   for m in messages)


# --------------------------------------------------------------------- #
# the repository itself is clean — the CI gate's contract
# --------------------------------------------------------------------- #


def test_repo_is_clean_under_all_rules():
    index = RepoIndex(REPO_ROOT)
    assert run_check(index) == []


def test_fixture_trees_are_excluded_from_the_default_scan():
    index = RepoIndex(REPO_ROOT)
    assert index.module("tests/devtools/fixtures/rp001_packed.py") is None


# --------------------------------------------------------------------- #
# suppressions and rule selection
# --------------------------------------------------------------------- #


def test_noqa_requires_the_rule_id(tmp_path):
    src = (
        '"""devtools: packed-state"""\n'
        "import numpy as np\n"
        "a = np.zeros(3)  # noqa: RP001\n"
        "b = np.zeros(3)  # noqa\n"
        "c = np.zeros(3)  # noqa: RP006\n"
    )
    (tmp_path / "mod.py").write_text(src, encoding="utf-8")
    found = _findings(tmp_path, "RP001", paths=["mod.py"])
    # only the line with the matching id is suppressed
    assert [f.line for f in found] == [4, 5]


def test_select_and_ignore():
    assert [r.id for r in select_rules(select=["rp001", "RP005"])] == [
        "RP001", "RP005",
    ]
    assert "RP003" not in {r.id for r in select_rules(ignore=["RP003"])}
    with pytest.raises(ValueError, match="unknown rule"):
        select_rules(select=["RP999"])
    with pytest.raises(ValueError, match="unknown rule"):
        select_rules(ignore=["XX000"])


def test_rule_catalogue_shape():
    rules = all_rules()
    assert [r.id for r in rules] == [f"RP{i:03d}" for i in range(13)]
    for r in rules:
        assert r.severity in ("error", "warning")
        assert r.scope in ("file", "repo")
        assert r.description
    autofixable = {r.id for r in rules if r.autofixable}
    assert autofixable == {"RP000", "RP001", "RP011", "RP012"}
    assert get_rule("RP000").severity == "warning"


def test_noqa_comma_list_suppresses_each_listed_rule(tmp_path):
    src = (
        '"""devtools: packed-state and devtools: spec-grammar"""\n'
        "import numpy as np\n"
        "\n"
        "\n"
        "def pick(kind, g):\n"
        '    if kind == "a":\n'
        "        return 1\n"
        '    if kind == "a":  # noqa: RP011,RP012\n'
        "        return 1\n"
        "    bad_cost = g + 1.0  # noqa: RP012, RP011\n"
        "    return bad_cost\n"
    )
    (tmp_path / "mod.py").write_text(src, encoding="utf-8")
    index = RepoIndex(tmp_path, paths=["mod.py"])
    found = run_check(
        index, rules=[get_rule("RP011"), get_rule("RP012")]
    )
    assert found == []


def test_noqa_inside_strings_is_not_a_directive(tmp_path):
    src = (
        '"""devtools: packed-state\n'
        "\n"
        "Docs may *mention* ``# noqa: RP012`` without suppressing it.\n"
        '"""\n'
        "\n"
        "\n"
        "def f(g):\n"
        '    text = "# noqa: RP012"\n'
        "    bad_cost = g + 1.0\n"
        "    return bad_cost, text\n"
    )
    (tmp_path / "mod.py").write_text(src, encoding="utf-8")
    found = _findings(tmp_path, "RP012", paths=["mod.py"])
    assert [f.line for f in found] == [9]


def test_rp000_reports_unused_noqa(tmp_path):
    src = (
        '"""devtools: packed-state"""\n'
        "\n"
        "\n"
        "def f(g):\n"
        "    good = g + 1  # noqa: RP012\n"
        "    bad_cost = g + 1.0  # noqa: RP012\n"
        "    return good, bad_cost\n"
    )
    (tmp_path / "mod.py").write_text(src, encoding="utf-8")
    index = RepoIndex(tmp_path, paths=["mod.py"])
    found = run_check(index, rules=[get_rule("RP000"), get_rule("RP012")])
    # line 6's noqa is used (suppresses RP012); line 5's is dead weight
    assert [(f.rule, f.line) for f in found] == [("RP000", 5)]
    assert found[0].severity == "warning"
    assert "RP012" in found[0].message
    assert found[0].fix is not None


def test_rp000_not_reported_unless_selected(tmp_path):
    src = (
        '"""devtools: packed-state"""\n'
        "\n"
        "x = 1  # noqa: RP012\n"
    )
    (tmp_path / "mod.py").write_text(src, encoding="utf-8")
    assert _findings(tmp_path, "RP012", paths=["mod.py"]) == []
