"""Each RPxxx rule fires on its known-violation fixture — and only there.

The fixtures live in ``tests/devtools/fixtures/`` (excluded from both
pytest collection and the analyzer's default scan).  Per-file rules get
a single deliberately broken module; the cross-file sync rules get
miniature repo trees with one injected drift each.
"""

from pathlib import Path

import pytest

from repro.devtools import RepoIndex, all_rules, get_rule, run_check, select_rules

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def _findings(root, rule_id, paths=None):
    index = RepoIndex(root, paths=paths)
    return run_check(index, rules=[get_rule(rule_id)])


# --------------------------------------------------------------------- #
# per-file rules: one broken module each
# --------------------------------------------------------------------- #


def test_rp001_fires_on_packed_fixture():
    found = _findings(FIXTURES, "RP001", paths=["rp001_packed.py"])
    assert len(found) == 5
    assert {f.rule for f in found} == {"RP001"}
    messages = " | ".join(f.message for f in found)
    assert "shifted by literal 64" in messages
    assert "65 bits" in messages
    assert "without an explicit dtype" in messages
    assert "int32" in messages
    assert "uint32" in messages
    # the canonical (1 << 64) - 1 mask idiom on line 5 is NOT flagged
    assert all(f.line != 5 for f in found)


def test_rp003_fires_on_fork_fixture():
    found = _findings(FIXTURES, "RP003", paths=["rp003_forks.py"])
    assert len(found) == 5
    messages = " | ".join(f.message for f in found)
    assert "lambda as process target" in messages
    assert "bound attribute" in messages
    assert "nested function" in messages
    assert "register_at_fork inside a function" in messages


def test_rp006_fires_on_flaky_fixture():
    found = _findings(FIXTURES, "RP006", paths=["rp006_flaky.py"])
    assert len(found) == 5
    messages = " | ".join(f.message for f in found)
    assert "unseeded global generator" in messages
    assert "numpy's unseeded global" in messages
    assert "wall clock" in messages
    assert "inside an assert" in messages


# --------------------------------------------------------------------- #
# cross-file rules: miniature repo trees with injected drift
# --------------------------------------------------------------------- #


def test_rp002_fires_on_engine_drift_tree():
    found = _findings(FIXTURES / "rp002_drift", "RP002")
    messages = [f.message for f in found]
    assert any('engine "turbo" is dispatched' in m for m in messages)
    assert any('ENGINES lists "ghost"' in m for m in messages)
    assert any('"turbo" has no golden-optima coverage' in m for m in messages)
    assert any('"turbo" has no row' in m for m in messages)
    assert any('documents engine "retired"' in m for m in messages)
    assert len(found) == 5
    # covered engines produce no findings
    assert not any('"legacy"' in m or '"bits"' in m for m in messages)


def test_rp004_fires_on_registry_drift_tree():
    found = _findings(FIXTURES / "rp004_drift", "RP004")
    messages = [f.message for f in found]
    assert any('spec kind "mystery:"' in m for m in messages)
    assert any('method "secret:method"' in m for m in messages)
    assert len(found) == 2


def test_rp005_fires_on_service_drift_tree():
    found = _findings(FIXTURES / "rp005_drift", "RP005")
    messages = [f.message for f in found]
    assert any("418 is produced but has no _STATUS_PHRASES" in m
               for m in messages)
    assert any("418 can reach clients but is missing" in m for m in messages)
    assert any("documents status 404" in m for m in messages)
    assert len(found) == 3


# --------------------------------------------------------------------- #
# the repository itself is clean — the CI gate's contract
# --------------------------------------------------------------------- #


def test_repo_is_clean_under_all_rules():
    index = RepoIndex(REPO_ROOT)
    assert run_check(index) == []


def test_fixture_trees_are_excluded_from_the_default_scan():
    index = RepoIndex(REPO_ROOT)
    assert index.module("tests/devtools/fixtures/rp001_packed.py") is None


# --------------------------------------------------------------------- #
# suppressions and rule selection
# --------------------------------------------------------------------- #


def test_noqa_requires_the_rule_id(tmp_path):
    src = (
        '"""devtools: packed-state"""\n'
        "import numpy as np\n"
        "a = np.zeros(3)  # noqa: RP001\n"
        "b = np.zeros(3)  # noqa\n"
        "c = np.zeros(3)  # noqa: RP006\n"
    )
    (tmp_path / "mod.py").write_text(src, encoding="utf-8")
    found = _findings(tmp_path, "RP001", paths=["mod.py"])
    # only the line with the matching id is suppressed
    assert [f.line for f in found] == [4, 5]


def test_select_and_ignore():
    assert [r.id for r in select_rules(select=["rp001", "RP005"])] == [
        "RP001", "RP005",
    ]
    assert "RP003" not in {r.id for r in select_rules(ignore=["RP003"])}
    with pytest.raises(ValueError, match="unknown rule"):
        select_rules(select=["RP999"])
    with pytest.raises(ValueError, match="unknown rule"):
        select_rules(ignore=["XX000"])


def test_rule_catalogue_shape():
    rules = all_rules()
    assert [r.id for r in rules] == [
        "RP001", "RP002", "RP003", "RP004", "RP005", "RP006",
    ]
    for r in rules:
        assert r.severity in ("error", "warning")
        assert r.scope in ("file", "repo")
        assert r.description
