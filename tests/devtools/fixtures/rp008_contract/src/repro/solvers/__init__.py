"""Miniature solvers package for the RP008 fixture tree."""

from .engine import solve_fixture

__all__ = ["solve_fixture"]
