"""Fixture solver whose raises break the public exception contract."""


class PebblingError(Exception):
    """Domain-error root (mirrors repro.core.errors)."""


class SolverError(PebblingError):
    """A legal escape: subclass of the allowed base."""


def _load_table(kind):
    if kind not in ("base", "nodel"):
        raise KeyError(kind)  # RP008: escapes solve_fixture via _load_table
    return {"base": 1, "nodel": 2}


def _probe(kind):
    try:
        return _load_table(kind)
    except LookupError:
        return {}  # masked here: this call path is NOT flagged


def solve_fixture(spec, kind="base"):
    if spec is None:
        raise ValueError("spec required")  # allowed by the contract
    if not isinstance(spec, str):
        raise RuntimeError("bad spec type")  # RP008: disallowed type
    _probe(kind)
    table = _load_table(kind)
    if not table:
        raise SolverError("empty table")  # allowed: PebblingError subclass
    return table
