"""Known-violation fixture for RP007 (resource-release-paths).

The ``devtools: src`` marker opts this module into the rule's scope.
Three functions leak a tracked resource on some normal CFG path; the
rest are clean controls for every release/transfer idiom.
"""

import sqlite3
from contextlib import closing

from repro.experiments.backends import retire_pipe_worker, spawn_pipe_worker


def leak_on_early_return(path, strict):
    conn = sqlite3.connect(path)  # RP007: 'strict' branch exits unclosed
    if strict:
        return None
    conn.execute("select 1")
    conn.close()
    return True


def leak_second_pipe_end(ctx):
    parent, child = ctx.Pipe()  # RP007: 'child' is never released
    parent.close()
    return None


def leak_on_skipped_branch(ctx, jobs):
    pool = ctx.Pool(2)  # RP007: terminate only happens when jobs is truthy
    if jobs:
        pool.terminate()
    return len(jobs)


def clean_context_manager(path):
    conn = sqlite3.connect(path)
    with closing(conn):
        conn.execute("select 1")


def clean_try_finally(ctx):
    parent, child = ctx.Pipe()
    try:
        parent.send(("ping", 0))
    finally:
        parent.close()
        child.close()


def clean_ownership_transfer(path):
    conn = sqlite3.connect(path)
    return conn


def clean_retired_worker(ctx, fn):
    worker = spawn_pipe_worker(ctx, fn)
    retire_pipe_worker(worker)
