"""Known-violation fixture for RP012 (float-costs-in-kernel).

The ``devtools: packed-state`` marker opts this module into the rule's
scope.  Every offending literal is integral, so every finding carries
an int-literal autofix and ``--fix`` converges this file to clean.
"""


def relax(g, moves, bound):
    best = g + 1.0  # RP012: float mixes into cost arithmetic
    if best > 100.0:  # RP012: float compares against a cost name
        return bound
    incumbent = 0.0  # RP012: float assigned to a cost name
    for step in moves:
        incumbent += 2.0  # RP012: float augments a cost name
    threshold = bound - 1.0  # RP012: float mixes into a bound expression
    return incumbent, threshold


def poll_interval(seconds):
    return min(seconds, 0.005)  # timing float: never flagged
