"""Known-violation fixture for RP009 (fork-shared-state).

The ``devtools: pipe-worker`` marker opts this module into the rule's
scope.  The worker loop (a ``Process`` target) and its callee both
mutate module-level containers — writes a spawned child never shares
with the parent.  The parent-side registry write is the clean control.
"""

import multiprocessing as mp

_RESULTS = {}
_LIMITS = [8, 16]
_PARENT_REGISTRY = {}


def _record(key, value):
    _RESULTS[key] = value  # RP009: worker-side callee writes a module dict


def _worker_loop(conn):
    while True:
        msg = conn.recv()
        if msg is None:
            break
        _record(msg, msg)
        _LIMITS.append(msg)  # RP009: worker target mutates a module list
    conn.close()


def start_worker(ctx):
    parent, child = ctx.Pipe()
    proc = mp.Process(target=_worker_loop, args=(child,))
    proc.start()
    child.close()
    _PARENT_REGISTRY[proc.pid] = parent  # parent-side bookkeeping: legal
    return parent
