"""Known-violation fixture for RP006 (devtools: tests)."""

import random
import time
from datetime import datetime

import numpy as np


def test_flaky_everything():
    unseeded = random.random()  # RP006: global generator
    np_unseeded = np.random.rand(3)  # RP006: numpy global generator
    wall = time.time()  # RP006: wall clock
    now = datetime.now()  # RP006: wall clock
    start = time.perf_counter()  # legal outside an assert
    assert time.perf_counter() - start < 1.0  # RP006: timer in assert
    seeded = random.Random(42).random()  # legal
    rng = np.random.default_rng(7)  # legal
    return unseeded, np_unseeded, wall, now, seeded, rng
