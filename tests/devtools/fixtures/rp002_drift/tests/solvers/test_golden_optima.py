"""RP002 fixture: golden coverage for bits (default) and legacy only."""

from repro.solvers.exact import solve_optimal, solve_optimal_legacy


def test_golden():
    assert solve_optimal(None)[0] == "bits"
    assert solve_optimal(None, engine="legacy") == solve_optimal_legacy(None)
