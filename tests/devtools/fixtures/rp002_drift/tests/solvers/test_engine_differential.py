"""RP002 fixture: ENGINES lists a retired engine and misses "turbo"."""

ENGINES = ("legacy", "ghost")


def test_engines_nonempty():
    assert ENGINES
