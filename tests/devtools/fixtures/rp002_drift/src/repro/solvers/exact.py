"""RP002 fixture: solve_optimal dispatches an engine the mirrors miss."""


def solve_optimal(inst, engine="bits"):
    if engine == "legacy":
        return ("legacy", inst)
    if engine == "turbo":  # drift: absent from tests and docs
        return ("turbo", inst)
    if engine == "bits":
        return ("bits", inst)
    raise ValueError(f"unknown engine {engine!r}")


def solve_optimal_legacy(inst):
    return solve_optimal(inst, engine="legacy")
