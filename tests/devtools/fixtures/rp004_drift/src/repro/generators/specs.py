"""RP004 fixture: a spec kind the grammar page doesn't document."""


def dag_from_spec(spec):
    kind, _, rest = spec.partition(":")
    if kind == "pyramid":
        return ("pyramid", rest)
    if kind == "mystery":  # drift: not in docs/spec-grammar.md
        return ("mystery", rest)
    raise ValueError(spec)
