"""RP004 fixture: a fixed method key the grammar page doesn't document."""


def _run_exact(inst):
    return inst


def _run_secret(inst):
    return inst


_FIXED = {
    "exact": _run_exact,
    "secret:method": _run_secret,  # drift: not in docs/spec-grammar.md
}
