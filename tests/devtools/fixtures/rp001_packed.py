"""Known-violation fixture for RP001 (devtools: packed-state)."""

import numpy as np

_MASK = (1 << 64) - 1  # legal: constant-base shift, the canonical mask idiom
_OK = np.zeros(4, dtype=np.uint64)  # legal: pinned 64-bit lane


def violations(x):
    shifted = x << 64  # RP001: value shifted past the lane
    wide = x & 0x1FFFFFFFFFFFFFFFF  # RP001: 65-bit mask literal
    unpinned = np.zeros(4)  # RP001: no dtype
    narrow = np.array([1, 2], dtype=np.int32)  # RP001: narrow dtype
    cast = np.uint32(x)  # RP001: narrowing scalar cast
    return shifted, wide, unpinned, narrow, cast
