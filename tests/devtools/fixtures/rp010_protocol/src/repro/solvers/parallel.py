"""Miniature sharded-search module with four kinds of protocol drift."""

import multiprocessing as mp


def _worker(conn):
    while True:
        msg = conn.recv()
        if msg is None:
            break
        tag = msg[0]
        if tag == "solve":
            conn.send(("status", 0))
        elif tag == "bound":
            continue
        else:
            conn.send(("oops", msg))  # RP010: parent never handles 'oops'
    conn.close()


def start(ctx):
    parent, child = ctx.Pipe()
    proc = mp.Process(target=_worker, args=(child,))
    proc.start()
    child.close()
    return parent, proc


def drive(parent):
    parent.send(("solve", {}))
    parent.send(("bound", 7))
    parent.send(("warp", 3))  # RP010: worker never handles 'warp'
    while parent.poll(0.1):
        msg = parent.recv()
        if msg[0] == "status":
            return msg[1]
        if msg[0] == "trace":  # RP010: no worker ever sends 'trace'
            continue
    return None
