"""Known-violation fixture for RP003 (devtools: src)."""

import os


def _loop(conn):
    conn.close()


class Worker:
    def start(self, ctx):
        bound = ctx.Process(target=self._run)  # RP003: bound method
        anon = ctx.Process(target=lambda: None)  # RP003: lambda

        def helper():
            return None

        nested = ctx.Process(target=helper)  # RP003: closure
        os.register_at_fork(after_in_child=helper)  # RP003: not module scope
        return bound, anon, nested

    def _run(self):
        return None


def spawn_lambda(ctx):
    return spawn_pipe_worker(ctx, lambda conn: conn)  # RP003: lambda


def fine_parameter(ctx, target):
    return ctx.Process(target=target)  # legal: unresolvable parameter


def fine_module_level(ctx):
    return spawn_pipe_worker(ctx, _loop)  # legal: module-level function


def spawn_pipe_worker(ctx, target):
    return ctx.Process(target=target, daemon=True)
