"""Known-violation fixture for RP011 (dead-dispatch-branch).

The ``devtools: spec-grammar`` marker opts this module into the rule's
scope.  Both duplicates are flat, else-less, and structurally identical
to their first occurrence, so both findings carry a delete autofix and
``--fix`` converges this file to clean.
"""


def parse_kind(kind):
    if kind == "chain":
        return ("chain", 1)
    if kind == "grid":
        return ("grid", 2)
    if kind == "chain":  # RP011: dead duplicate of the line-11 branch
        return ("chain", 1)
    if kind.startswith("tree:"):
        return ("tree", kind[5:])
    if kind.startswith("tree:"):  # RP011: dead duplicate, startswith form
        return ("tree", kind[5:])
    raise ValueError(kind)
