"""RP005 fixture: produced statuses drift from phrases and docs."""

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status, code, message):
        super().__init__(message)
        self.status = status
        self.code = code


def _respond(writer, status, body):
    writer.write(b"%d %s" % (status, body))


def handle(writer, ok):
    if not ok:
        raise _HttpError(418, "teapot", "short and stout")  # no phrase, undocumented
    _respond(writer, 400, b"bad request")
