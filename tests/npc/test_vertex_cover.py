"""Tests for the exact and approximate vertex cover solvers."""

import itertools

import pytest

from repro.generators import (
    UndirectedGraph,
    complete_graph,
    cycle_graph,
    path_graph,
    planted_vertex_cover_graph,
    random_graph,
    star_graph,
)
from repro.npc import (
    is_vertex_cover,
    max_independent_set,
    min_vertex_cover,
    vertex_cover_2approx,
)


def brute_force_vc_size(graph):
    for k in range(graph.n + 1):
        for cand in itertools.combinations(range(graph.n), k):
            if is_vertex_cover(graph, set(cand)):
                return k
    raise AssertionError("unreachable")


class TestExact:
    def test_path_graph(self):
        assert len(min_vertex_cover(path_graph(6))) == 3
        assert len(min_vertex_cover(path_graph(7))) == 3

    def test_cycle(self):
        assert len(min_vertex_cover(cycle_graph(6))) == 3
        assert len(min_vertex_cover(cycle_graph(7))) == 4

    def test_star_center(self):
        assert min_vertex_cover(star_graph(8)) == {0}

    def test_complete(self):
        assert len(min_vertex_cover(complete_graph(6))) == 5

    def test_edgeless(self):
        assert min_vertex_cover(UndirectedGraph.from_edges(5, [])) == frozenset()

    def test_result_is_always_a_cover(self):
        for seed in range(8):
            g = random_graph(10, 0.4, seed=seed)
            assert is_vertex_cover(g, set(min_vertex_cover(g)))

    def test_agrees_with_brute_force(self):
        for seed in range(8):
            g = random_graph(8, 0.35, seed=seed)
            assert len(min_vertex_cover(g)) == brute_force_vc_size(g)

    def test_planted_cover_found(self):
        g = planted_vertex_cover_graph(12, 3, seed=2)
        assert len(min_vertex_cover(g)) <= 3


class TestApproximation:
    def test_factor_two(self):
        for seed in range(8):
            g = random_graph(12, 0.3, seed=seed)
            approx = vertex_cover_2approx(g)
            assert is_vertex_cover(g, set(approx))
            assert len(approx) <= 2 * len(min_vertex_cover(g))

    def test_tight_on_perfect_matching(self):
        # disjoint edges: approx takes both endpoints, opt takes one each
        g = UndirectedGraph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        assert len(vertex_cover_2approx(g)) == 6
        assert len(min_vertex_cover(g)) == 3

    def test_empty_graph(self):
        assert vertex_cover_2approx(UndirectedGraph.from_edges(3, [])) == frozenset()


class TestIndependentSet:
    def test_complement_relation(self):
        g = random_graph(9, 0.4, seed=1)
        mis = max_independent_set(g)
        assert len(mis) == g.n - len(min_vertex_cover(g))
        # independence: no edge inside the set
        assert not any(g.has_edge(u, v) for u in mis for v in mis if u < v)

    def test_star_leaves(self):
        assert max_independent_set(star_graph(6)) == frozenset(range(1, 6))


class TestIsVertexCover:
    def test_accepts_valid(self):
        assert is_vertex_cover(path_graph(4), {1, 2})

    def test_rejects_invalid(self):
        assert not is_vertex_cover(path_graph(4), {0})
