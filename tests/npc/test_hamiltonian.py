"""Tests for the exact Hamiltonian path solver."""

import itertools

import networkx as nx
import pytest

from repro.generators import (
    UndirectedGraph,
    complete_graph,
    cycle_graph,
    path_graph,
    planted_hampath_graph,
    random_graph,
    star_graph,
)
from repro.npc import (
    count_hamiltonian_paths,
    find_hamiltonian_path,
    has_hamiltonian_path,
)


def is_ham_path(graph, path):
    return (
        path is not None
        and sorted(path) == list(range(graph.n))
        and all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))
    )


class TestDecision:
    def test_path_graph_yes(self):
        assert has_hamiltonian_path(path_graph(7))

    def test_cycle_yes(self):
        assert has_hamiltonian_path(cycle_graph(6))

    def test_complete_yes(self):
        assert has_hamiltonian_path(complete_graph(5))

    def test_star_no(self):
        assert not has_hamiltonian_path(star_graph(5))

    def test_disconnected_no(self):
        g = UndirectedGraph.from_edges(4, [(0, 1), (2, 3)])
        assert not has_hamiltonian_path(g)

    def test_empty_edgeless(self):
        assert has_hamiltonian_path(UndirectedGraph.from_edges(0, []))
        assert has_hamiltonian_path(UndirectedGraph.from_edges(1, []))
        assert not has_hamiltonian_path(UndirectedGraph.from_edges(2, []))

    def test_planted_instances_always_yes(self):
        for seed in range(5):
            g = planted_hampath_graph(9, extra_edges=4, seed=seed)
            assert has_hamiltonian_path(g)


class TestPathExtraction:
    def test_extracted_path_is_valid(self):
        for seed in range(5):
            g = planted_hampath_graph(8, extra_edges=3, seed=seed)
            path = find_hamiltonian_path(g)
            assert is_ham_path(g, path)

    def test_path_graph_unique_path(self):
        path = find_hamiltonian_path(path_graph(5))
        assert path in ((0, 1, 2, 3, 4), (4, 3, 2, 1, 0))

    def test_none_when_absent(self):
        assert find_hamiltonian_path(star_graph(5)) is None


class TestCounting:
    def test_path_graph_has_one(self):
        assert count_hamiltonian_paths(path_graph(6)) == 1

    def test_cycle_has_n(self):
        assert count_hamiltonian_paths(cycle_graph(5)) == 5

    def test_complete_graph_count(self):
        # n!/2 undirected Hamiltonian paths in K_n
        assert count_hamiltonian_paths(complete_graph(4)) == 12

    def test_zero_when_absent(self):
        assert count_hamiltonian_paths(star_graph(4)) == 0


class TestAgainstBruteForce:
    def test_random_graphs_agree_with_enumeration(self):
        for seed in range(10):
            g = random_graph(7, 0.35, seed=seed)
            expected = any(
                all(g.has_edge(u, v) for u, v in zip(p, p[1:]))
                for p in itertools.permutations(range(7))
            )
            assert has_hamiltonian_path(g) == expected

    def test_agrees_with_networkx_reachability_sanity(self):
        # a Hamiltonian path implies connectivity
        for seed in range(5):
            g = random_graph(8, 0.3, seed=seed)
            if has_hamiltonian_path(g):
                assert nx.is_connected(g.to_networkx())
