"""DOT import/export and the edge-list format: exact round-trips and
error paths.

The hypothesis properties exercise random DAGs over the label shapes the
generators actually use — plain strings, ints, and nested tuples like
``("g", i, j)`` / ``("b", level, i)`` — plus strings with the characters
the DOT quoting has to escape (quotes, backslashes, newlines).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import ComputationDAG
from repro.generators import butterfly_dag, grid_stencil_dag, pyramid_dag
from repro.io import (
    dag_from_edgelist,
    dag_from_json,
    dag_to_edgelist,
    dag_to_json,
    from_dot,
    to_dot,
)

RT_SETTINGS = dict(max_examples=60, deadline=None)

# strings that never collide with the repr of another label type (a
# digits-only string would stringify like an int and round-trip as one)
_texts = st.text(
    alphabet='abcxyz_ "\\\n-',
    min_size=1,
    max_size=6,
).filter(lambda s: not s.strip('"\\\n ').isdigit())

_labels = st.one_of(
    _texts,
    st.integers(min_value=-50, max_value=50),
    st.tuples(st.sampled_from(["g", "b", "P"]), st.integers(0, 9)),
    st.tuples(
        st.sampled_from(["g", "b"]), st.integers(0, 9), st.integers(0, 9)
    ),
    st.tuples(_texts, st.integers(0, 9)),
)


@st.composite
def random_dags(draw):
    labels = draw(
        st.lists(_labels, min_size=1, max_size=8, unique=True)
    )
    edges = []
    # only forward edges (i < j) in the drawn order: acyclic by design
    for i in range(len(labels)):
        for j in range(i + 1, len(labels)):
            if draw(st.booleans()):
                edges.append((labels[i], labels[j]))
    return ComputationDAG(edges=edges, nodes=labels)


def assert_same_dag(a: ComputationDAG, b: ComputationDAG) -> None:
    """Exact structural equality: node set and per-node predecessors."""
    assert set(a.nodes) == set(b.nodes)
    assert {v: a.predecessors(v) for v in a.nodes} == {
        v: b.predecessors(v) for v in b.nodes
    }


class TestDotRoundTrip:
    @settings(**RT_SETTINGS)
    @given(dag=random_dags())
    def test_round_trip_is_exact(self, dag):
        assert_same_dag(dag, from_dot(to_dot(dag)))

    @pytest.mark.parametrize("dag", [
        pyramid_dag(2),
        grid_stencil_dag(2, 3),
        butterfly_dag(2),
        ComputationDAG(nodes=["isolated", ("also", 1)]),
    ])
    def test_generator_labels_round_trip(self, dag):
        assert_same_dag(dag, from_dot(to_dot(dag)))

    def test_escaping_produces_valid_dot(self):
        # the old _quote left backslashes and newlines unescaped
        dag = ComputationDAG([('say "hi"', "back\\slash"), ("back\\slash", "a\nb")])
        text = to_dot(dag)
        for line in text.splitlines():
            assert "\n" not in line[1:]  # no raw newlines inside statements
        assert_same_dag(dag, from_dot(text))

    def test_state_colouring_is_ignored_on_import(self):
        from repro import PebblingState

        dag = pyramid_dag(2)
        state = PebblingState(
            red=frozenset([("pyr", 0, 0)]),
            blue=frozenset([("pyr", 0, 1)]),
            computed=frozenset([("pyr", 0, 0), ("pyr", 0, 1)]),
        )
        assert_same_dag(dag, from_dot(to_dot(dag, state)))


class TestDotErrors:
    @pytest.mark.parametrize("text", [
        "",                                          # no header
        'digraph g {\n  "a";\n',                     # missing closing brace
        '"a" -> "b";',                               # statement before header
        'digraph g {\n  "a" -> ;\n}',                # malformed edge
        'digraph g {\n  "a" -> "b"\n}',              # missing semicolon
        'digraph g {\n  "unterminated;\n}',          # unterminated quote
        'digraph g {\n  "a";\n  "a";\n}',            # duplicate node
        'digraph g {\n  "a";\n  "a" -> "b";\n}',     # dangling edge endpoint
        'digraph g {\n  "a";\n  "a" -> "a";\n}',     # self-loop
        'digraph g {\n  "a";\n  "b";\n  "a" -> "b";\n  "b" -> "a";\n}',  # cycle
        'digraph g {\n  }"a";\n}',                   # garbage statement
        'digraph g {\n}\n"late";',                   # statement after close
    ])
    def test_malformed_dot_raises(self, text):
        with pytest.raises(ValueError):
            from_dot(text)


class TestEdgelistRoundTrip:
    @settings(**RT_SETTINGS)
    @given(dag=random_dags())
    def test_round_trip_is_exact(self, dag):
        assert_same_dag(dag, dag_from_edgelist(dag_to_edgelist(dag)))

    @settings(**RT_SETTINGS)
    @given(dag=random_dags())
    def test_agrees_with_json_round_trip(self, dag):
        via_json = dag_from_json(dag_to_json(dag))
        via_edges = dag_from_edgelist(dag_to_edgelist(dag))
        assert_same_dag(via_json, via_edges)

    def test_isolated_nodes_and_comments(self):
        text = '#! repro-pebble/edgelist/v1\n\n# a comment\n["lonely"]\n'
        dag = dag_from_edgelist(text)
        assert set(dag.nodes) == {"lonely"}

    def test_tuple_labels_use_the_json_encoding(self):
        dag = grid_stencil_dag(2, 2)  # labels ("g", i, j)
        text = dag_to_edgelist(dag)
        assert '{"t": ["g", 0, 0]}' in text
        assert_same_dag(dag, dag_from_edgelist(text))


class TestEdgelistErrors:
    @pytest.mark.parametrize("text", [
        "not json\n",                                # malformed JSON line
        '["a", "b", "c"]\n',                         # wrong arity
        '"a"\n',                                     # not an array
        '["a"]\n["a"]\n',                            # duplicate node
        '["a"]\n["a", "b"]\n',                       # dangling edge endpoint
        '["a"]\n["a", "a"]\n',                       # self-loop
        '["a"]\n["b"]\n["a", "b"]\n["b", "a"]\n',    # cycle
        '[["bare", "list"]]\n',                      # bare list label encoding
        '[{"x": 1}]\n',                              # unknown label encoding
    ])
    def test_malformed_edgelist_raises(self, text):
        with pytest.raises(ValueError):
            dag_from_edgelist(text)

    def test_error_points_at_the_line(self):
        with pytest.raises(ValueError, match="line 3"):
            dag_from_edgelist('["a"]\n["b"]\nnot json\n')
