"""Tests for JSON round-trips and DOT export."""

from fractions import Fraction

import pytest

from repro import (
    ComputationDAG,
    Compute,
    Load,
    PebblingInstance,
    PebblingState,
    Schedule,
    Store,
)
from repro.gadgets import tradeoff_dag
from repro.generators import pyramid_dag
from repro.io import (
    dag_from_json,
    dag_to_json,
    instance_from_json,
    instance_to_json,
    schedule_from_json,
    schedule_to_json,
    to_dot,
)


class TestDagSerialization:
    def test_round_trip_simple(self):
        dag = ComputationDAG([("a", "b"), ("b", "c")])
        back = dag_from_json(dag_to_json(dag))
        assert set(back.edges()) == set(dag.edges())
        assert set(back.nodes) == set(dag.nodes)

    def test_round_trip_tuple_labels(self):
        dag = pyramid_dag(2)  # labels like ("pyr", 1, 0)
        back = dag_from_json(dag_to_json(dag))
        assert set(back.edges()) == set(dag.edges())

    def test_round_trip_nested_construction(self):
        td = tradeoff_dag(2, 4)
        back = dag_from_json(dag_to_json(td.dag))
        assert back.n_nodes == td.dag.n_nodes
        assert back.max_indegree == td.dag.max_indegree

    def test_isolated_nodes_preserved(self):
        dag = ComputationDAG(nodes=["only"])
        back = dag_from_json(dag_to_json(dag))
        assert set(back.nodes) == {"only"}

    def test_rejects_unserializable_label(self):
        dag = ComputationDAG(nodes=[frozenset({1})])
        with pytest.raises(TypeError):
            dag_to_json(dag)

    def test_indent_produces_readable_output(self):
        dag = ComputationDAG([("a", "b")])
        assert "\n" in dag_to_json(dag, indent=2)


class TestScheduleSerialization:
    def test_round_trip(self):
        s = Schedule([Compute(("p", 1)), Store(("p", 1)), Load(("p", 1))])
        assert schedule_from_json(schedule_to_json(s)) == s

    def test_empty(self):
        assert schedule_from_json(schedule_to_json(Schedule())) == Schedule()


class TestInstanceSerialization:
    def test_round_trip_defaults(self):
        inst = PebblingInstance(
            dag=ComputationDAG([("a", "b")]), model="oneshot", red_limit=2
        )
        back = instance_from_json(instance_to_json(inst))
        assert back.model == inst.model
        assert back.red_limit == 2
        assert set(back.dag.edges()) == {("a", "b")}

    def test_round_trip_budget_and_epsilon(self):
        inst = PebblingInstance(
            dag=ComputationDAG([("a", "b")]),
            model="compcost",
            red_limit=2,
            cost_budget=Fraction(7, 2),
            epsilon=Fraction(1, 50),
        )
        back = instance_from_json(instance_to_json(inst))
        assert back.cost_budget == Fraction(7, 2)
        assert back.epsilon == Fraction(1, 50)
        assert back.costs.compute_cost == Fraction(1, 50)

    def test_absent_epsilon_falls_back_to_the_model_default(self):
        """Payloads without an epsilon key must pick up DEFAULT_EPSILON —
        not a hard-coded copy of its current value that could silently
        drift if the constant ever changes."""
        import json

        from repro.core.models import DEFAULT_EPSILON

        inst = PebblingInstance(
            dag=ComputationDAG([("a", "b")]), model="compcost", red_limit=2
        )
        payload = json.loads(instance_to_json(inst))
        del payload["epsilon"]
        back = instance_from_json(json.dumps(payload))
        assert back.epsilon == DEFAULT_EPSILON
        assert back.costs.compute_cost == DEFAULT_EPSILON

    def test_explicit_epsilon_round_trips_exactly(self):
        inst = PebblingInstance(
            dag=ComputationDAG([("a", "b")]),
            model="compcost",
            red_limit=2,
            epsilon=Fraction(3, 7),
        )
        back = instance_from_json(instance_to_json(inst))
        assert back.epsilon == Fraction(3, 7)


class TestDot:
    def test_structure(self):
        dag = ComputationDAG([("a", "b")])
        dot = to_dot(dag)
        assert dot.startswith("digraph")
        assert '"a" -> "b";' in dot

    def test_state_colouring(self):
        dag = ComputationDAG([("a", "b")])
        state = PebblingState(
            frozenset({"a"}), frozenset({"b"}), frozenset({"a", "b"})
        )
        dot = to_dot(dag, state)
        assert "#e05a5a" in dot  # red fill
        assert "#5a7de0" in dot  # blue fill

    def test_computed_grey(self):
        dag = ComputationDAG([("a", "b")])
        state = PebblingState(frozenset(), frozenset(), frozenset({"a"}))
        assert "#d0d0d0" in to_dot(dag, state)
