"""repro.io must stay importable without loading the experiments subsystem."""

import os
import subprocess
import sys

import repro


def test_repro_io_does_not_import_experiments():
    pkg_root = os.path.dirname(os.path.dirname(repro.__file__))
    env = {**os.environ, "PYTHONPATH": pkg_root}
    code = (
        "import sys; import repro.io; "
        "sys.exit(1 if 'repro.experiments.runner' in sys.modules else 0)"
    )
    proc = subprocess.run([sys.executable, "-c", code], env=env)
    assert proc.returncode == 0
