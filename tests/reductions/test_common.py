"""Tests for the input-group system skeleton."""

import pytest

from repro import PebblingSimulator, validate_schedule
from repro.reductions import GroupSystem, GroupVisitor, InputGroup


def two_group_system():
    g1 = InputGroup(id="g1", members=("a", "b"), targets=("t1",))
    g2 = InputGroup(id="g2", members=("b", "t1"), targets=("t2",))
    return GroupSystem([g1, g2])


class TestConstruction:
    def test_dag_edges(self):
        sys = two_group_system()
        assert set(sys.dag.predecessors("t1")) == {"a", "b"}
        assert set(sys.dag.predecessors("t2")) == {"b", "t1"}

    def test_red_limit_is_group_size_plus_one(self):
        assert two_group_system().red_limit == 3

    def test_member_and_target_maps(self):
        sys = two_group_system()
        assert sorted(sys.member_of["b"]) == ["g1", "g2"]
        assert sys.target_of["t1"] == "g1"

    def test_precedence_from_embedded_targets(self):
        assert two_group_system().precedence() == [("g1", "g2")]

    def test_valid_sequence(self):
        sys = two_group_system()
        assert sys.valid_sequence(["g1", "g2"])
        assert not sys.valid_sequence(["g2", "g1"])
        assert not sys.valid_sequence(["g1"])

    def test_rejects_duplicate_ids(self):
        g = InputGroup(id="g", members=("a",), targets=("t",))
        g2 = InputGroup(id="g", members=("b",), targets=("u",))
        with pytest.raises(ValueError):
            GroupSystem([g, g2])

    def test_rejects_target_of_two_groups(self):
        g1 = InputGroup(id="g1", members=("a",), targets=("t",))
        g2 = InputGroup(id="g2", members=("b",), targets=("t",))
        with pytest.raises(ValueError):
            GroupSystem([g1, g2])

    def test_input_group_validation(self):
        with pytest.raises(ValueError):
            InputGroup(id="x", members=(), targets=("t",))
        with pytest.raises(ValueError):
            InputGroup(id="x", members=("a",), targets=())
        with pytest.raises(ValueError):
            InputGroup(id="x", members=("a",), targets=("a",))


class TestEmitter:
    @pytest.mark.parametrize("model", ["oneshot", "nodel"])
    def test_emitted_schedule_is_valid_and_complete(self, model):
        sys = two_group_system()
        sched = sys.emit_visit_schedule(["g1", "g2"], model)
        from repro import PebblingInstance

        inst = PebblingInstance(dag=sys.dag, model=model, red_limit=sys.red_limit)
        report = validate_schedule(inst, sched)
        assert report.ok, report.violations[:3]

    def test_rejects_invalid_sequence(self):
        sys = two_group_system()
        with pytest.raises(ValueError):
            sys.emit_visit_schedule(["g2", "g1"])

    def test_rejects_unsupported_model(self):
        sys = two_group_system()
        with pytest.raises(ValueError):
            sys.emit_visit_schedule(["g1", "g2"], "base")

    def test_shared_member_stays_red_between_visits(self):
        """'b' belongs to both groups: no transfer should touch it."""
        sys = two_group_system()
        sched = sys.emit_visit_schedule(["g1", "g2"], "oneshot")
        from repro import Load, Store

        touched = [m for m in sched if m.node == "b"]
        assert not any(isinstance(m, (Load, Store)) for m in touched)

    def test_oneshot_stores_only_whats_needed(self):
        # 'a' is exclusive to g1 and not a sink: deleted, not stored
        sys = two_group_system()
        sched = sys.emit_visit_schedule(["g1", "g2"], "oneshot")
        from repro import Delete, Store

        a_moves = [m for m in sched if m.node == "a"]
        assert any(isinstance(m, Delete) for m in a_moves)
        assert not any(isinstance(m, Store) for m in a_moves)

    def test_nodel_never_deletes(self):
        from repro import Delete

        sys = two_group_system()
        sched = sys.emit_visit_schedule(["g1", "g2"], "nodel")
        assert sched.count(Delete) == 0

    def test_capacity_respected(self):
        from repro import PebblingInstance

        sys = two_group_system()
        inst = PebblingInstance(dag=sys.dag, model="oneshot", red_limit=3)
        res = PebblingSimulator(inst).run(
            sys.emit_visit_schedule(["g1", "g2"]), require_complete=True
        )
        assert res.max_red_in_use <= 3


class TestVisitor:
    def test_enabled_groups_initially_without_dependencies(self):
        sys = two_group_system()
        visitor = GroupVisitor(sys)
        assert visitor.enabled_groups() == ["g1"]

    def test_enabled_after_visit(self):
        sys = two_group_system()
        visitor = GroupVisitor(sys)
        visitor.visit("g1")
        assert visitor.enabled_groups() == ["g2"]

    def test_red_members_score(self):
        sys = two_group_system()
        visitor = GroupVisitor(sys)
        visitor.visit("g1")
        # after g1: b red (shared), t1 red (last target) -> g2 scores 2
        assert visitor.red_members("g2") == 2

    def test_rejects_double_visit(self):
        sys = two_group_system()
        visitor = GroupVisitor(sys)
        visitor.visit("g1")
        with pytest.raises(ValueError):
            visitor.visit("g1")

    def test_rejects_disabled_group(self):
        sys = two_group_system()
        visitor = GroupVisitor(sys)
        with pytest.raises(ValueError):
            visitor.visit("g2")

    def test_multi_target_group_spills_targets(self):
        from repro import PebblingInstance, Store

        g = InputGroup(id="g", members=("a", "b"), targets=("t1", "t2", "t3"))
        sys = GroupSystem([g])
        sched = sys.emit_visit_schedule(["g"])
        inst = PebblingInstance(dag=sys.dag, model="oneshot", red_limit=3)
        report = validate_schedule(inst, sched)
        assert report.ok
        # all but the last target must be stored to make room
        stores = [m.node for m in sched if isinstance(m, Store)]
        assert "t1" in stores and "t2" in stores and "t3" not in stores
