"""Tests for the Theorem 4 greedy-adversarial grid (Figure 8)."""

import pytest

from repro import PebblingSimulator, validate_schedule
from repro.reductions import greedy_grid_construction, grid_group_greedy


class TestConstruction:
    def test_group_count(self):
        c = greedy_grid_construction(4, 5)
        assert c.n_groups == 1 + 10
        assert len(c.system.groups) == c.n_groups

    def test_uniform_group_size(self):
        c = greedy_grid_construction(3, 4)
        assert all(g.size == c.k for g in c.system.groups.values())

    def test_diagonal_commons_shared(self):
        c = greedy_grid_construction(3, 4)
        # groups (2,1) and (1,2) share diagonal 3 commons
        g21 = set(c.system.groups[("g", 2, 1)].members)
        g12 = set(c.system.groups[("g", 1, 2)].members)
        commons = {("D", 3, i) for i in range(4)}
        assert commons <= g21 and commons <= g12

    def test_dependency_targets_chain_columns(self):
        c = greedy_grid_construction(3, 4)
        assert ("t", 1, 1) in c.system.groups[("g", 1, 2)].members
        assert ("t", 1, 2) in c.system.groups[("g", 1, 3)].members

    def test_s0_targets_in_bottom_groups(self):
        c = greedy_grid_construction(3, 4)
        for x in (1, 2, 3):
            assert ("s0t", x) in c.system.groups[("g", x, 1)].members

    def test_misguidance_intersections(self):
        c = greedy_grid_construction(3, 4)
        # top of column 2 = (2,2) shares mis(2) with bottom of column 1
        assert ("mis", 2) in c.system.groups[("g", 2, 2)].members
        assert ("mis", 2) in c.system.groups[("g", 1, 1)].members
        # S0 shares mis(l+1) with (l, 1)
        assert ("mis", 4) in c.system.groups[("S0",)].members
        assert ("mis", 4) in c.system.groups[("g", 3, 1)].members

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            greedy_grid_construction(1, 4)
        with pytest.raises(ValueError):
            greedy_grid_construction(3, 0)
        with pytest.raises(ValueError):
            greedy_grid_construction(3, 5, k=6)


class TestSequences:
    def test_optimal_sequence_valid(self):
        c = greedy_grid_construction(4, 5)
        assert c.system.valid_sequence(c.optimal_sequence())

    def test_predicted_greedy_sequence_valid(self):
        c = greedy_grid_construction(4, 5)
        assert c.system.valid_sequence(c.predicted_greedy_sequence())

    def test_sequences_cover_all_groups_once(self):
        c = greedy_grid_construction(3, 4)
        for seq in (c.optimal_sequence(), c.predicted_greedy_sequence()):
            assert len(seq) == c.n_groups
            assert len(set(seq)) == c.n_groups


class TestTheorem4:
    @pytest.mark.parametrize("l,kc", [(2, 3), (3, 5), (4, 8)])
    def test_greedy_follows_predicted_misguided_walk(self, l, kc):
        """The core claim of Theorem 4: the greedy rule walks the columns
        right-to-left, bottom-to-top — exactly as the misguidance nodes
        steer it."""
        c = greedy_grid_construction(l, kc)
        _, seq = grid_group_greedy(c)
        assert seq == c.predicted_greedy_sequence()

    def test_greedy_schedule_valid(self):
        c = greedy_grid_construction(3, 6)
        sched, _ = grid_group_greedy(c)
        report = validate_schedule(c.instance(), sched)
        assert report.ok, report.violations[:3]

    def test_optimal_schedule_valid(self):
        c = greedy_grid_construction(3, 6)
        sched = c.schedule_for_sequence(c.optimal_sequence())
        report = validate_schedule(c.instance(), sched)
        assert report.ok, report.violations[:3]

    def test_greedy_strictly_worse_and_gap_grows(self):
        ratios = []
        for l, kc in [(3, 6), (5, 15)]:
            c = greedy_grid_construction(l, kc)
            sched, _ = grid_group_greedy(c)
            greedy_cost = PebblingSimulator(c.instance()).run(
                sched, require_complete=True
            ).cost
            opt_cost = c.cost_of_sequence(c.optimal_sequence())
            assert greedy_cost > opt_cost
            ratios.append(float(greedy_cost / opt_cost))
        assert ratios[1] > ratios[0]

    def test_greedy_cost_scales_with_commons(self):
        """Greedy pays ~2k' per diagonal revisit: doubling k' roughly
        doubles its cost while the optimum barely moves."""
        l = 4
        c1 = greedy_grid_construction(l, 8)
        c2 = greedy_grid_construction(l, 16)
        g1, _ = grid_group_greedy(c1)
        g2, _ = grid_group_greedy(c2)
        cost1 = PebblingSimulator(c1.instance()).run(g1, require_complete=True).cost
        cost2 = PebblingSimulator(c2.instance()).run(g2, require_complete=True).cost
        assert 1.6 < float(cost2 / cost1) < 2.4
        opt1 = c1.cost_of_sequence(c1.optimal_sequence())
        opt2 = c2.cost_of_sequence(c2.optimal_sequence())
        assert abs(float(opt2 / opt1) - 1.0) < 0.5

    def test_optimal_diagonal_sweep_beats_column_walk(self):
        c = greedy_grid_construction(4, 10)
        col = c.cost_of_sequence(c.predicted_greedy_sequence())
        diag = c.cost_of_sequence(c.optimal_sequence())
        assert diag < col
