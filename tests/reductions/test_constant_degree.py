"""Tests for the Appendix B constant-indegree transformation."""

import itertools

import pytest

from repro import PebblingSimulator, validate_schedule
from repro.generators import path_graph, random_graph
from repro.reductions import (
    constant_degree_system,
    greedy_grid_construction,
    hampath_reduction,
)


@pytest.fixture
def ham5():
    return hampath_reduction(path_graph(5), "oneshot")


class TestConstruction:
    def test_max_indegree_two(self, ham5):
        cd = constant_degree_system(ham5.system, layers=2)
        assert cd.dag.max_indegree == 2

    def test_red_limit_plus_one(self, ham5):
        cd = constant_degree_system(ham5.system, layers=2)
        assert cd.red_limit == ham5.system.red_limit + 1

    def test_gadget_per_group(self, ham5):
        cd = constant_degree_system(ham5.system, layers=3)
        assert set(cd.gadgets) == set(ham5.system.groups)
        for gid, info in cd.gadgets.items():
            group = cd.groups[gid]
            assert info.left == group.members
            assert len(info.chain) == 3 * len(group.members)

    def test_targets_hang_off_exit(self, ham5):
        cd = constant_degree_system(ham5.system, layers=2)
        for gid, info in cd.gadgets.items():
            for t in cd.groups[gid].targets:
                assert cd.dag.predecessors(t) == (info.exit,)

    def test_precedence_preserved(self, ham5):
        cd = constant_degree_system(ham5.system, layers=2)
        assert cd.precedence() == ham5.system.precedence()

    def test_rejects_zero_layers(self, ham5):
        with pytest.raises(ValueError):
            constant_degree_system(ham5.system, layers=0)


class TestCostPreservation:
    def test_oneshot_costs_identical_all_orders(self):
        """The heart of Appendix B: in oneshot the transformation is
        cost-exact — every visit order prices identically to the plain
        construction (gadget walks are free)."""
        g = random_graph(4, 0.5, seed=7)
        red = hampath_reduction(g, "oneshot")
        cd = constant_degree_system(red.system, layers=2)
        inst = cd.instance("oneshot")
        for order in itertools.permutations(range(4)):
            sched = cd.emit_visit_schedule(order, "oneshot")
            report = validate_schedule(inst, sched)
            assert report.ok, report.violations[:3]
            assert report.cost == red.cost_of_order(order)

    def test_nodel_overhead_is_gadget_node_count(self):
        """Appendix B.1: nodel pays one store per gadget chain node."""
        g = path_graph(5)
        red = hampath_reduction(g, "nodel")
        cd = constant_degree_system(red.system, layers=3)
        order = list(range(5))
        sched = cd.emit_visit_schedule(order, "nodel")
        report = validate_schedule(cd.instance("nodel"), sched)
        assert report.ok
        assert report.cost == red.cost_of_order(order) + cd.n_gadget_nodes

    def test_capacity_is_group_size_plus_two(self, ham5):
        cd = constant_degree_system(ham5.system, layers=2)
        sched = cd.emit_visit_schedule(range(5), "oneshot")
        res = PebblingSimulator(cd.instance("oneshot")).run(
            sched, require_complete=True
        )
        assert res.max_red_in_use == cd.red_limit

    def test_hamiltonian_decision_survives_transformation(self):
        """Thm 2 at Delta = 2: threshold comparison still decides."""
        from repro.npc import has_hamiltonian_path
        from repro.solvers.group import held_karp_min_order

        for seed in range(4):
            g = random_graph(5, 0.4, seed=seed)
            red = hampath_reduction(g, "oneshot")
            cd = constant_degree_system(red.system, layers=2)
            inst = cd.instance("oneshot")
            best = min(
                PebblingSimulator(inst).run(
                    cd.emit_visit_schedule(order, "oneshot"),
                    require_complete=True,
                ).cost
                for order in itertools.permutations(range(5))
            )
            assert (best <= red.decision_threshold()) == has_hamiltonian_path(g)

    def test_invalid_sequence_rejected(self, ham5):
        cd = constant_degree_system(ham5.system, layers=2)
        with pytest.raises(ValueError):
            cd.emit_visit_schedule([0, 0, 1, 2, 3], "oneshot")

    def test_unsupported_model_rejected(self, ham5):
        cd = constant_degree_system(ham5.system, layers=2)
        with pytest.raises(ValueError):
            cd.emit_visit_schedule(range(5), "base")


class TestGridAtConstantDegree:
    def test_grid_transform_gap_persists(self):
        """Theorem 4 at Delta = 2 (Appendix B.3): the greedy/optimal gap
        survives the transformation."""
        c = greedy_grid_construction(4, 10)
        cd = constant_degree_system(c.system, layers=2)
        assert cd.dag.max_indegree == 2
        inst = cd.instance("oneshot")
        greedy_cost = PebblingSimulator(inst).run(
            cd.emit_visit_schedule(c.predicted_greedy_sequence(), "oneshot"),
            require_complete=True,
        ).cost
        opt_cost = PebblingSimulator(inst).run(
            cd.emit_visit_schedule(c.optimal_sequence(), "oneshot"),
            require_complete=True,
        ).cost
        assert greedy_cost > 2 * opt_cost
        # and both equal their plain-construction counterparts
        assert greedy_cost == c.cost_of_sequence(c.predicted_greedy_sequence())
        assert opt_cost == c.cost_of_sequence(c.optimal_sequence())
