"""Tests for the Theorem 2 Hamiltonian-path reduction (Figure 5)."""

import itertools

import pytest

from repro import Model, PebblingSimulator, validate_schedule
from repro.generators import (
    UndirectedGraph,
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph,
    star_graph,
)
from repro.npc import has_hamiltonian_path
from repro.reductions import hampath_reduction
from repro.solvers import solve_optimal

ALL_MODELS = ["oneshot", "nodel", "base", "compcost"]


class TestConstruction:
    def test_node_counts_match_paper(self):
        """'a DAG with altogether N*(N-1) - M source nodes and N sink
        nodes' (Section 6)."""
        g = random_graph(5, 0.5, seed=1)
        red = hampath_reduction(g, "oneshot")
        n, m = g.n, g.m
        assert red.dag.n_nodes == (n * (n - 1) - m) + n
        assert len(red.dag.sources) == n * (n - 1) - m
        assert len(red.dag.sinks) == n

    def test_red_limit_is_n(self):
        g = path_graph(5)
        assert hampath_reduction(g, "oneshot").red_limit == 5

    def test_merged_contacts_for_edges(self):
        g = path_graph(3)  # edges (0,1), (1,2)
        red = hampath_reduction(g, "oneshot")
        # contact of 0 for 1 and of 1 for 0 merged
        assert ("v", 0, 1) in red.groups[0] and ("v", 0, 1) in red.groups[1]
        # 0 and 2 not adjacent: contacts distinct
        assert ("v", 0, 2) in red.groups[0] and ("v", 2, 0) in red.groups[2]

    def test_group_sizes(self):
        g = cycle_graph(5)
        red = hampath_reduction(g, "oneshot")
        assert all(len(grp) == 4 for grp in red.groups)

    def test_h2c_attached_for_base(self):
        g = path_graph(4)
        red = hampath_reduction(g, "base")
        assert red.h2c is not None
        # every contact is guarded: no more contact sources
        for grp in red.groups:
            for c in grp:
                assert red.dag.predecessors(c)

    def test_minimum_sizes(self):
        with pytest.raises(ValueError):
            hampath_reduction(path_graph(2), "oneshot")
        with pytest.raises(ValueError):
            hampath_reduction(path_graph(3), "base")


class TestCostFormulas:
    """The per-order analytic costs must equal the simulated schedule cost
    for every order, in every model (exhaustive on N=4)."""

    @pytest.mark.parametrize("model", ALL_MODELS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_formula_equals_simulation(self, model, seed):
        g = random_graph(4, 0.5, seed=seed)
        red = hampath_reduction(g, model)
        inst = red.instance()
        sim = PebblingSimulator(inst)
        for order in itertools.permutations(range(4)):
            sched = red.schedule_for_order(order)
            report = validate_schedule(inst, sched)
            assert report.ok, (order, report.violations[:3])
            assert report.cost == red.cost_of_order(order)
            assert sim.run(sched, require_complete=True).cost == report.cost

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_threshold_met_iff_hamiltonian(self, model):
        for g, expect in [
            (path_graph(5), True),
            (cycle_graph(5), True),
            (star_graph(5), False),
            (complete_graph(4), True),
            (UndirectedGraph.from_edges(4, [(0, 1), (2, 3)]), False),
        ]:
            red = hampath_reduction(g, model)
            assert red.decide_hamiltonian_path() == expect
            assert expect == has_hamiltonian_path(g)

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_held_karp_cost_matches_best_enumerated_order(self, model):
        g = random_graph(5, 0.4, seed=3)
        red = hampath_reduction(g, model)
        best = min(
            red.cost_of_order(order)
            for order in itertools.permutations(range(5))
        )
        hk_cost, hk_order = red.optimal_order()
        assert hk_cost == best
        assert red.cost_of_order(hk_order) == best

    def test_gap_between_ham_and_non_ham_orders(self):
        """A Hamiltonian order beats any order that misses an adjacency."""
        g = path_graph(5)
        red = hampath_reduction(g, "oneshot")
        ham = red.cost_of_order([0, 1, 2, 3, 4])
        broken = red.cost_of_order([0, 2, 1, 3, 4])
        assert ham < broken


class TestOptimalityAgainstExactSolver:
    """On tiny instances the canonical strategy must equal the true
    optimum over *all* pebblings, not just visit orders."""

    @pytest.mark.parametrize("model", ["oneshot", "nodel"])
    def test_strategy_is_globally_optimal_n3(self, model):
        for edges in [[(0, 1), (1, 2)], [(0, 1)], []]:
            g = UndirectedGraph.from_edges(3, edges)
            red = hampath_reduction(g, model)
            best_order = min(
                red.cost_of_order(order)
                for order in itertools.permutations(range(3))
            )
            exact = solve_optimal(
                red.instance(), return_schedule=False, budget=3_000_000
            )
            assert exact.cost == best_order


class TestInverseReduction:
    @pytest.mark.parametrize("model", ["oneshot", "nodel"])
    def test_pebbling_decides_hampath_on_random_graphs(self, model):
        for seed in range(6):
            g = random_graph(6, 0.4, seed=seed)
            red = hampath_reduction(g, model)
            assert red.decide_hamiltonian_path() == has_hamiltonian_path(g)
