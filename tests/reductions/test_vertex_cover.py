"""Tests for the Theorem 3 vertex-cover reduction (Figures 6-7)."""

import pytest

from repro import PebblingSimulator, validate_schedule
from repro.generators import (
    cycle_graph,
    path_graph,
    random_graph,
    star_graph,
)
from repro.npc import min_vertex_cover, vertex_cover_2approx
from repro.reductions import vertex_cover_reduction


class TestConstruction:
    def test_two_groups_per_node(self):
        g = path_graph(4)
        red = vertex_cover_reduction(g, k=6)
        assert len(red.system.groups) == 8

    def test_group_sizes_all_k(self):
        g = cycle_graph(5)
        red = vertex_cover_reduction(g, k=8)
        assert all(grp.size == 8 for grp in red.system.groups.values())

    def test_common_nodes_shared_between_levels(self):
        g = path_graph(3)
        red = vertex_cover_reduction(g, k=5)
        for a in range(3):
            g1 = set(red.system.groups[(a, 1)].members)
            g2 = set(red.system.groups[(a, 2)].members)
            assert set(red.common[a]) <= g1 and set(red.common[a]) <= g2
            assert len(red.common[a]) == red.k_common

    def test_first_level_has_n_minus_1_targets(self):
        g = path_graph(4)
        red = vertex_cover_reduction(g, k=6)
        assert len(red.system.groups[(0, 1)].targets) == 3
        assert len(red.system.groups[(0, 2)].targets) == 1

    def test_edge_targets_embedded_in_second_level(self):
        g = path_graph(3)  # edges (0,1), (1,2)
        red = vertex_cover_reduction(g, k=5)
        # t_{b,1,a} in V_{a,2} for every edge (a,b)
        assert ("t1", 1, 0) in red.system.groups[(0, 2)].members
        assert ("t1", 0, 1) in red.system.groups[(1, 2)].members
        assert ("t1", 2, 0) not in red.system.groups[(0, 2)].members

    def test_precedence_matches_edges(self):
        g = path_graph(3)
        red = vertex_cover_reduction(g, k=5)
        prec = set(red.system.precedence())
        assert ((1, 1), (0, 2)) in prec  # edge (0,1)
        assert ((0, 1), (1, 2)) in prec
        assert ((2, 1), (0, 2)) not in prec  # no edge (0,2)

    def test_default_k_is_polynomially_large(self):
        g = path_graph(4)
        red = vertex_cover_reduction(g)
        assert red.k == 4 * 4 + 4 + 1

    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            vertex_cover_reduction(path_graph(4), k=4)


class TestSequences:
    def test_cover_sequence_is_valid(self):
        g = cycle_graph(5)
        red = vertex_cover_reduction(g, k=8)
        seq = red.sequence_for_cover(min_vertex_cover(g))
        assert red.system.valid_sequence(seq)

    def test_rejects_non_cover(self):
        g = path_graph(4)
        red = vertex_cover_reduction(g, k=6)
        with pytest.raises(ValueError):
            red.sequence_for_cover({0})

    def test_consecutive_pairs_complement_cover(self):
        g = cycle_graph(5)
        red = vertex_cover_reduction(g, k=8)
        vc = min_vertex_cover(g)
        seq = red.sequence_for_cover(vc)
        assert red.consecutive_pairs(seq) == g.n - len(vc)
        assert red.implied_cover(seq) == vc

    def test_schedule_valid_and_complete(self):
        g = random_graph(5, 0.4, seed=2)
        red = vertex_cover_reduction(g, k=8)
        seq = red.sequence_for_cover(min_vertex_cover(g))
        sched = red.schedule_for_sequence(seq)
        report = validate_schedule(red.instance(), sched)
        assert report.ok, report.violations[:3]

    def test_capacity_respected(self):
        g = path_graph(4)
        red = vertex_cover_reduction(g, k=6)
        seq = red.sequence_for_cover(min_vertex_cover(g))
        res = PebblingSimulator(red.instance()).run(
            red.schedule_for_sequence(seq), require_complete=True
        )
        assert res.max_red_in_use <= red.red_limit


class TestCostStructure:
    def test_cost_tracks_cover_size(self):
        """Bigger covers => proportionally bigger cost (the 2k'|VC| law)."""
        g = star_graph(6)  # VC_min = {center}, but any leaf set also covers
        red = vertex_cover_reduction(g, k=30)
        small = red.cost_of_cover({0})
        big = red.cost_of_cover({0, 1, 2, 3})
        assert small < big
        # dominant-term prediction within O(N^2) slack
        assert abs(small - red.dominant_term(1)) <= red.slack()
        assert abs(big - red.dominant_term(4)) <= red.slack()

    def test_dominant_term_dominates_at_large_k(self):
        g = cycle_graph(6)
        red = vertex_cover_reduction(g, k=150)
        vc = min_vertex_cover(g)
        cost = red.cost_of_cover(vc)
        dom = red.dominant_term(len(vc))
        assert dom <= cost <= dom + red.slack()
        # relative error shrinks with k
        assert float(cost) / dom < 1.2

    def test_lower_bound_below_optimal_strategy(self):
        g = random_graph(6, 0.5, seed=4)
        red = vertex_cover_reduction(g, k=60)
        assert red.lower_bound() <= red.optimal_cost_upper_bound()

    def test_approx_cover_cost_within_factor_two_plus_slack(self):
        """The 2-approx cover's pebbling is within ~2x of the optimum —
        and by Theorem 3 + UGC nothing below 2 is achievable in general."""
        g = random_graph(7, 0.4, seed=5)
        red = vertex_cover_reduction(g, k=100)
        opt = red.optimal_cost_upper_bound()
        approx = red.approx_cost_upper_bound()
        assert approx <= 2 * opt + red.slack()

    def test_nodel_costs_more(self):
        """nodel forces common nodes blue even in consecutive visits
        (the reason Theorem 3 does not transfer to nodel)."""
        g = path_graph(4)
        red = vertex_cover_reduction(g, k=10)
        seq = red.sequence_for_cover(min_vertex_cover(g))
        assert red.cost_of_sequence(seq, "nodel") > red.cost_of_sequence(
            seq, "oneshot"
        )
