"""Run the runnable module docstrings as tests.

CI also runs ``pytest --doctest-modules`` over these modules in the
``docs`` job; this leg keeps the doctests green in the plain tier-1
suite too, so a drifting docstring fails fast everywhere.
"""

import doctest

import pytest

import repro.experiments.registry
import repro.experiments.store
import repro.generators.specs

DOCTESTED_MODULES = [
    repro.generators.specs,
    repro.experiments.registry,
    repro.experiments.store,
]


@pytest.mark.parametrize(
    "module", DOCTESTED_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
