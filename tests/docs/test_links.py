"""The docs site must not rot: every relative markdown link resolves."""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

MARKDOWN_FILES = sorted(
    [REPO / "README.md"]
    + list((REPO / "docs").glob("*.md"))
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def relative_links(path):
    for target in _LINK_RE.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def test_docs_directory_exists():
    assert (REPO / "docs").is_dir(), "the docs/ site is part of the repo"
    assert len(MARKDOWN_FILES) >= 5


@pytest.mark.parametrize("path", MARKDOWN_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(path):
    broken = [
        target for target in relative_links(path)
        if not (path.parent / target).exists()
    ]
    assert not broken, f"broken links in {path.name}: {broken}"
