"""RunResult records and their JSON/CSV round-trips."""

from fractions import Fraction

import pytest

from repro.experiments import RunResult, RunStatus
from repro.io import (
    run_results_from_csv,
    run_results_from_json,
    run_results_to_csv,
    run_results_to_json,
)

SAMPLE = [
    RunResult(
        spec="s",
        dag="pyramid:3",
        model="oneshot",
        method="greedy",
        red_limit=3,
        cost="8",
        n_moves=14,
        status=RunStatus.OK,
        wall_time=0.25,
        cached=False,
        task_hash="abc123",
        extra={"rule": "most-red-inputs"},
    ),
    RunResult(
        spec="s",
        dag="grid:4x4",
        model="compcost",
        method="exact",
        red_limit=3,
        cost="1604/25",
        n_moves=40,
        status=RunStatus.OK,
        wall_time=1.5,
        cached=True,
        task_hash="def456",
    ),
    RunResult(
        spec="s",
        dag="matmul:5",
        model="oneshot",
        method="exact",
        red_limit=None,
        status=RunStatus.TIMEOUT,
        wall_time=60.0,
        task_hash="ffff",
        error="exceeded 60s",
    ),
]


class TestRunResult:
    def test_cost_fraction_exact(self):
        assert SAMPLE[1].cost_fraction == Fraction(1604, 25)

    def test_unfinished_cost_is_none(self):
        assert SAMPLE[2].cost_fraction is None
        assert not SAMPLE[2].ok

    def test_status_coerced_from_string(self):
        r = RunResult(spec="s", dag="d", model="m", method="x",
                      red_limit=1, status="timeout")
        assert r.status is RunStatus.TIMEOUT

    def test_dict_round_trip(self):
        for r in SAMPLE:
            assert RunResult.from_dict(r.to_dict()) == r


class TestJsonRoundTrip:
    def test_round_trip(self):
        text = run_results_to_json(SAMPLE)
        assert run_results_from_json(text) == SAMPLE

    def test_versioned_envelope(self):
        import json

        payload = json.loads(run_results_to_json(SAMPLE))
        assert payload["format"] == "repro-pebble/results/v1"

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            run_results_from_json('{"format": "something-else", "results": []}')

    def test_accepts_bare_list(self):
        import json

        text = json.dumps([r.to_dict() for r in SAMPLE])
        assert run_results_from_json(text) == SAMPLE


class TestCsvRoundTrip:
    def test_round_trip(self):
        text = run_results_to_csv(SAMPLE)
        assert run_results_from_csv(text) == SAMPLE

    def test_fractions_survive(self):
        restored = run_results_from_csv(run_results_to_csv(SAMPLE))
        assert restored[1].cost_fraction == Fraction(1604, 25)

    def test_extra_mapping_survives(self):
        restored = run_results_from_csv(run_results_to_csv(SAMPLE))
        assert restored[0].extra == {"rule": "most-red-inputs"}

    def test_header_present(self):
        first = run_results_to_csv(SAMPLE).splitlines()[0]
        assert first.startswith("spec,dag,model,method,red_limit,cost")
