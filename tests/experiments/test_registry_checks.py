"""Every hardness spec runs green and its assertion suite passes.

This is the tier-1 regression gate for the paper's theorem claims: each
spec below is executed inline (they are all sub-second grids) and its
registered checks — decision thresholds, the 2k'|VC| accounting, the
greedy-defeating grid gap, the gadget cliffs, the Lemma 1 length bound,
the table matrices — must hold.
"""

import pytest

from repro.experiments import Runner, checks_for, get_spec, run_spec_checks

# every registered spec that carries an assertion suite and runs in
# well under a second per grid (the timings are pinned by the CI
# benchmarks job; hardness-smoke has its own dedicated test module)
FAST_CHECKED_SPECS = [
    "thm2-hampath",
    "thm2-ordering",
    "thm3-vertex-cover",
    "thm3-ksweep",
    "thm4-greedy-grid",
    "thm4-kprime",
    "appendix-b-thm2",
    "appendix-b-thm4",
    "appendix-c",
    "fig1-cd",
    "fig2-h2c",
    "lemma1-length",
    "table1-models",
    "table2-properties",
    "workloads-smoke",
    "matmul-blocked",
    "conv-sweep",
    "attn-sweep",
]


@pytest.mark.parametrize("name", FAST_CHECKED_SPECS)
def test_spec_runs_green_and_checks_hold(name):
    spec = get_spec(name)
    results = Runner(jobs=0).run(spec)
    assert len(results) == spec.n_tasks
    assert run_spec_checks(name, results) >= 1


def test_every_hardness_tagged_spec_is_gated():
    from repro.experiments import all_specs

    for spec in all_specs(tag="hardness"):
        assert checks_for(spec.name), (
            f"hardness spec {spec.name!r} has no assertion suite"
        )


def test_check_failure_is_labelled():
    from dataclasses import replace

    spec = get_spec("table1-models")
    results = Runner(jobs=0).run(spec)
    broken = [
        replace(r, extra={**r.extra, "matches_declared": "False"})
        for r in results
    ]
    with pytest.raises(AssertionError, match=r"\[table1-models/"):
        run_spec_checks(spec.name, broken)
