"""End-to-end tests for the `repro-pebble bench` subcommand."""

import json

import pytest

from repro.cli import main
from repro.io import run_results_from_csv, run_results_from_json


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestBenchList:
    def test_lists_builtins(self, capsys):
        code, out = run(capsys, "bench", "list")
        assert code == 0
        assert "smoke" in out and "sec3-bounds" in out

    def test_tag_filter(self, capsys):
        code, out = run(capsys, "bench", "list", "--tag", "ci")
        assert code == 0
        assert "smoke" in out and "hong-kung" not in out

    def test_unknown_tag_fails(self, capsys):
        code, out = run(capsys, "bench", "list", "--tag", "no-such-tag")
        assert code == 1


class TestBenchRunChecks:
    def test_assertion_suites_run_after_the_grid(self, capsys):
        code, out = run(
            capsys, "bench", "run", "table1-models",
            "--jobs", "0", "--no-cache", "--quiet",
        )
        assert code == 0
        assert "[table1-models] 1 assertion suite(s) passed" in out

    def test_no_check_skips_the_suites(self, capsys):
        code, out = run(
            capsys, "bench", "run", "table1-models",
            "--jobs", "0", "--no-cache", "--quiet", "--no-check",
        )
        assert code == 0
        assert "assertion suite" not in out

    def test_violated_suite_fails_the_command(self, capsys, monkeypatch):
        from repro.experiments import registry

        def bomb(results):
            raise AssertionError("intentionally violated")

        monkeypatch.setitem(registry._CHECKS, "table1-models", [bomb])
        code, out = run(
            capsys, "bench", "run", "table1-models",
            "--jobs", "0", "--no-cache", "--quiet",
        )
        assert code == 1
        assert "CHECK FAILED" in out and "intentionally violated" in out


class TestBenchRun:
    def test_writes_json_and_csv(self, tmp_path, capsys):
        out_json = tmp_path / "r.json"
        out_csv = tmp_path / "r.csv"
        code, out = run(
            capsys, "bench", "run", "smoke",
            "--jobs", "0", "--no-cache", "--quiet",
            "--out", str(out_json), "--csv", str(out_csv),
        )
        assert code == 0
        results = run_results_from_json(out_json.read_text())
        assert len(results) == 12 and all(r.ok for r in results)
        assert run_results_from_csv(out_csv.read_text()) == results
        assert "smoke: cost by method" in out
        assert "12 ok" in out

    def test_parallel_with_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        code, _ = run(
            capsys, "bench", "run", "smoke", "--jobs", "2",
            "--cache-dir", str(cache), "--quiet",
        )
        assert code == 0
        code, out = run(
            capsys, "bench", "run", "smoke", "--jobs", "2",
            "--cache-dir", str(cache), "--quiet",
        )
        assert code == 0
        assert "12 cached" in out

    def test_unknown_spec_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "run", "no-such-spec", "--no-cache"])


class TestBenchCompare:
    @pytest.fixture()
    def artifact(self, tmp_path, capsys):
        path = tmp_path / "r.json"
        run(capsys, "bench", "run", "smoke", "--jobs", "0",
            "--no-cache", "--quiet", "--out", str(path))
        return path

    def test_render_single(self, artifact, capsys):
        code, out = run(capsys, "bench", "compare", str(artifact))
        assert code == 0
        assert "baseline" in out and "greedy" in out

    def test_compare_two(self, artifact, capsys):
        code, out = run(capsys, "bench", "compare", str(artifact), str(artifact))
        assert code == 0
        assert "ratio" in out
        assert "1.00" in out

    def test_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "compare", str(tmp_path / "nope.json")])

    def test_foreign_json_exits(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"format": "other", "results": []}))
        with pytest.raises(SystemExit):
            main(["bench", "compare", str(path)])

    def test_wrong_shaped_records_exit_cleanly(self, tmp_path):
        path = tmp_path / "rows.json"
        path.write_text(json.dumps([{"kernel": "matmul", "R": 4}]))
        with pytest.raises(SystemExit):
            main(["bench", "compare", str(path)])
