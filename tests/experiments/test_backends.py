"""Execution backends: inline/pool equivalence, persistence, isolation."""

import threading

import pytest

from repro.experiments import (
    InlineBackend,
    MultiprocessingBackend,
    TaskSpec,
    backend_for_jobs,
)


def task_for(dag="chain:3", method="baseline", **kw):
    return TaskSpec(spec="t", dag=dag, model="oneshot", method=method,
                    red_limit="min", **kw)


@pytest.fixture(scope="module")
def pool():
    backend = MultiprocessingBackend(jobs=2)
    yield backend
    backend.close()


class TestInlineBackend:
    def test_results_keyed_and_ordered(self):
        batch = [(10, task_for(dag="chain:3")), (20, task_for(dag="chain:4"))]
        produced = InlineBackend().run_tasks(batch)
        assert [key for key, _ in produced] == [10, 20]
        assert all(r.ok for _, r in produced)

    def test_on_result_callback(self):
        seen = []
        InlineBackend().run_tasks([(0, task_for())], on_result=seen.append)
        assert len(seen) == 1 and seen[0].ok

    def test_does_not_enforce_timeouts(self):
        assert not InlineBackend().enforces_timeouts


class TestMultiprocessingBackend:
    def test_matches_inline_results(self, pool):
        batch = [(i, task_for(dag=f"chain:{n}"))
                 for i, n in enumerate((2, 3, 4, 5))]
        inline = dict(InlineBackend().run_tasks(batch))
        pooled = dict(pool.run_tasks(batch))
        assert set(pooled) == set(inline)
        for key in inline:
            assert pooled[key].cost == inline[key].cost
            assert pooled[key].status == inline[key].status

    def test_workers_stay_warm_between_batches(self, pool):
        pool.run_tasks([(0, task_for())])
        pids_before = {w.process.pid for w in pool._idle}
        assert pids_before
        pool.run_tasks([(0, task_for(dag="chain:4"))])
        assert {w.process.pid for w in pool._idle} & pids_before

    def test_timeout_produces_timeout_record(self, pool):
        (key, result), = pool.run_tasks(
            [(0, task_for(method="sleep:30"))], timeout=0.3
        )
        assert result.status.value == "timeout"
        assert "0.3" in result.error

    def test_task_level_timeout(self, pool):
        (_, result), = pool.run_tasks(
            [(0, task_for(method="sleep:30", timeout=0.3))]
        )
        assert result.status.value == "timeout"

    def test_call_override_beats_task_timeout(self, pool):
        # generous task timeout, tight call override: override wins
        (_, result), = pool.run_tasks(
            [(0, task_for(method="sleep:30", timeout=60))], timeout=0.3
        )
        assert result.status.value == "timeout"

    def test_crash_isolated_from_batch(self, pool):
        batch = [(0, task_for(method="crash")),
                 (1, task_for(dag="chain:4")),
                 (2, task_for(dag="chain:5"))]
        produced = dict(pool.run_tasks(batch))
        assert len(produced) == 3
        assert produced[0].status.value == "error"
        assert "worker process died" in produced[0].error
        assert produced[1].ok and produced[2].ok

    def test_pool_usable_after_crash(self, pool):
        pool.run_tasks([(0, task_for(method="crash"))])
        (_, result), = pool.run_tasks([(0, task_for())])
        assert result.ok

    def test_method_exception_is_error_not_crash(self, pool):
        (_, result), = pool.run_tasks([(0, task_for(dag="no-such-dag:3"))])
        assert result.status.value == "error"
        assert "worker process died" not in (result.error or "")

    def test_shared_across_threads(self, pool):
        """Two dispatcher threads can drive one backend concurrently."""
        outputs = {}

        def drive(name, n):
            outputs[name] = pool.run_tasks(
                [(i, task_for(dag=f"chain:{n + i}")) for i in range(3)]
            )

        threads = [threading.Thread(target=drive, args=(t, n))
                   for t, n in (("a", 2), ("b", 6))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for name in ("a", "b"):
            assert len(outputs[name]) == 3
            assert all(r.ok for _, r in outputs[name])

    def test_closed_backend_rejects_work(self):
        backend = MultiprocessingBackend(jobs=1)
        backend.close()
        with pytest.raises(RuntimeError):
            backend.run_tasks([(0, task_for())])

    def test_close_is_idempotent(self):
        backend = MultiprocessingBackend(jobs=1)
        backend.run_tasks([(0, task_for())])
        backend.close()
        backend.close()

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            MultiprocessingBackend(jobs=0)


class TestBackendForJobs:
    def test_zero_is_inline(self):
        assert isinstance(backend_for_jobs(0), InlineBackend)

    def test_positive_is_pool(self):
        backend = backend_for_jobs(2, timeout=5.0)
        assert isinstance(backend, MultiprocessingBackend)
        assert backend.jobs == 2 and backend.timeout == 5.0
        backend.close()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            backend_for_jobs(-1)
