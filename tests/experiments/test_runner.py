"""Runner semantics: inline/parallel execution, cache, timeouts, failures."""

from fractions import Fraction

import pytest

from repro.experiments import (
    ExperimentSpec,
    Runner,
    RunStatus,
    TaskSpec,
    execute_task,
)


def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        dags=("pyramid:3", "chain:5"),
        models=("oneshot",),
        methods=("baseline", "greedy"),
        red_limits=("min",),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestExecuteTask:
    def test_ok_record(self):
        task = TaskSpec(spec="t", dag="pyramid:3", model="oneshot",
                        method="greedy", red_limit="min")
        result = execute_task(task)
        assert result.ok
        assert result.red_limit == 3  # "min" resolved against Delta+1
        assert result.cost_fraction == Fraction(8)
        assert result.task_hash == task.content_hash()

    def test_infeasible_red_limit(self):
        task = TaskSpec(spec="t", dag="pyramid:3", model="oneshot",
                        method="greedy", red_limit=1)
        result = execute_task(task)
        assert result.status is RunStatus.INFEASIBLE
        assert result.cost is None

    def test_unknown_method_is_error(self):
        task = TaskSpec(spec="t", dag="pyramid:3", model="oneshot",
                        method="warp-drive", red_limit="min")
        result = execute_task(task)
        assert result.status is RunStatus.ERROR
        assert "warp-drive" in result.error

    def test_unknown_dag_is_error(self):
        task = TaskSpec(spec="t", dag="klein-bottle:4", model="oneshot",
                        method="greedy", red_limit="min")
        assert execute_task(task).status is RunStatus.ERROR


class TestInlineRunner:
    def test_results_in_task_order(self):
        spec = tiny_spec()
        results = Runner(jobs=0).run(spec)
        assert [(r.dag, r.method) for r in results] == [
            (t.dag, t.method) for t in spec.tasks()
        ]

    def test_all_ok(self):
        assert all(r.ok for r in Runner(jobs=0).run(tiny_spec()))


class TestParallelRunner:
    def test_matches_inline(self):
        spec = tiny_spec()
        inline = Runner(jobs=0).run(spec)
        parallel = Runner(jobs=3).run(spec)
        assert [(r.key(), r.cost) for r in inline] == [
            (r.key(), r.cost) for r in parallel
        ]

    def test_timeout_kills_stuck_task_but_not_the_run(self):
        spec = ExperimentSpec(
            name="stuck",
            dags=("chain:3",),
            methods=("sleep:30", "baseline"),
            timeout=0.5,
        )
        results = Runner(jobs=2).run(spec)
        by_method = {r.method: r for r in results}
        assert by_method["sleep:30"].status is RunStatus.TIMEOUT
        assert by_method["sleep:30"].cost is None
        assert by_method["baseline"].ok

    def test_runner_timeout_overrides_spec(self):
        spec = ExperimentSpec(name="stuck2", dags=("chain:3",),
                              methods=("sleep:30",), timeout=600)
        results = Runner(jobs=1, timeout=0.5).run(spec)
        assert results[0].status is RunStatus.TIMEOUT

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            Runner(jobs=-1)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        spec = tiny_spec()
        first = Runner(jobs=0, cache_dir=tmp_path).run(spec)
        assert not any(r.cached for r in first)
        second = Runner(jobs=0, cache_dir=tmp_path).run(spec)
        assert all(r.cached for r in second)
        assert [r.cost for r in first] == [r.cost for r in second]

    def test_cache_shared_across_spec_names(self, tmp_path):
        Runner(jobs=0, cache_dir=tmp_path).run(tiny_spec(name="one"))
        results = Runner(jobs=0, cache_dir=tmp_path).run(tiny_spec(name="two"))
        assert all(r.cached for r in results)
        # cached records are re-labelled with the requesting spec
        assert all(r.spec == "two" for r in results)

    def test_refresh_recomputes(self, tmp_path):
        spec = tiny_spec()
        Runner(jobs=0, cache_dir=tmp_path).run(spec)
        results = Runner(jobs=0, cache_dir=tmp_path, refresh=True).run(spec)
        assert not any(r.cached for r in results)

    def test_failures_not_cached(self, tmp_path):
        spec = ExperimentSpec(name="err", dags=("chain:3",),
                              methods=("warp-drive",))
        Runner(jobs=0, cache_dir=tmp_path).run(spec)
        results = Runner(jobs=0, cache_dir=tmp_path).run(spec)
        assert results[0].status is RunStatus.ERROR
        assert not results[0].cached

    def test_corrupt_entry_recomputed(self, tmp_path):
        spec = ExperimentSpec(name="c", dags=("chain:3",), methods=("baseline",))
        runner = Runner(jobs=0, cache_dir=tmp_path)
        first = runner.run(spec)
        path = tmp_path / (first[0].task_hash + ".json")
        path.write_text("{ not json")
        results = Runner(jobs=0, cache_dir=tmp_path).run(spec)
        assert results[0].ok and not results[0].cached

    def test_no_cache_dir_no_files(self, tmp_path):
        Runner(jobs=0).run(tiny_spec())
        assert list(tmp_path.iterdir()) == []

    def test_parallel_populates_cache_for_inline(self, tmp_path):
        spec = tiny_spec()
        Runner(jobs=2, cache_dir=tmp_path).run(spec)
        results = Runner(jobs=0, cache_dir=tmp_path).run(spec)
        assert all(r.cached for r in results)
