"""The reduction-backed experiment methods and their golden agreements.

The headline invariant (the ``hardness-smoke`` acceptance gate): on
small instances the hardness constructions' canonical strategies must
agree with — or provably bracket — the exhaustive bits solver.
"""

from fractions import Fraction

import pytest

from repro.experiments import (
    Runner,
    TaskSpec,
    execute_task,
    get_spec,
    resolve_method,
    run_spec_checks,
)


def run_cell(dag, method, model="oneshot", red="min"):
    task = TaskSpec(spec="t", dag=dag, model=model, method=method, red_limit=red)
    return execute_task(task)


class TestResolution:
    @pytest.mark.parametrize("name", [
        "hampath:decide", "hampath:cd",
        "group:hk", "group:brute", "group:nn2opt",
        "vc:opt", "vc:2approx",
        "grid:greedy", "grid:opt", "grid:cdgreedy", "grid:cdopt",
        "table1:probe", "appendixc",
    ])
    def test_new_names_resolve(self, name):
        assert callable(resolve_method(name))

    @pytest.mark.parametrize("dag,method", [
        ("pyramid:3", "hampath:decide"),   # needs a hampath:... spec
        ("hampath:path:3", "vc:opt"),      # needs a vc:... spec
        ("pyramid:3", "grid:greedy"),      # needs a ggrid:... spec
    ])
    def test_wrong_dag_family_is_an_error_cell(self, dag, method):
        result = run_cell(dag, method)
        assert result.status.value == "error"
        assert "DAG spec" in (result.error or "")

    def test_hampath_cd_rejects_non_oneshot(self):
        result = run_cell("hampath:path:3", "hampath:cd", model="nodel")
        assert result.status.value == "error"


class TestHamPathGoldens:
    """hampath:decide answers pinned against the exact bits solver on
    the small graph zoo (nodel: the cheap exhaustive model)."""

    @pytest.mark.parametrize("graph,ham", [
        ("path:4", True),
        ("cycle:4", True),
        ("star:4", False),
    ])
    def test_decide_matches_exact_solver_nodel(self, graph, ham):
        decide = run_cell(f"hampath:{graph}", "hampath:decide", model="nodel")
        exact = run_cell(f"hampath:{graph}", "exact", model="nodel")
        assert decide.ok and exact.ok
        assert decide.cost_fraction == exact.cost_fraction
        assert decide.extra["verdict"] == decide.extra["truth"]
        assert decide.extra["truth"] == ("HAM" if ham else "no")
        assert (Fraction(decide.extra["gap"]) == 0) == ham

    def test_decide_matches_exact_solver_oneshot_tiny(self):
        decide = run_cell("hampath:path:3", "hampath:decide")
        exact = run_cell("hampath:path:3", "exact")
        assert decide.ok and exact.ok
        assert decide.cost_fraction == exact.cost_fraction == 2

    def test_all_models_agree_on_the_verdict(self):
        for model in ("oneshot", "nodel", "base", "compcost"):
            r = run_cell("hampath:star:4", "hampath:decide", model=model)
            assert r.ok, r.error
            assert r.extra["verdict"] == r.extra["truth"] == "no"

    def test_order_solvers_agree_with_decide(self):
        costs = {}
        for method in ("hampath:decide", "group:hk", "group:brute"):
            r = run_cell("hampath:cycle:4", method)
            assert r.ok, r.error
            costs[method] = r.cost_fraction
        assert len(set(costs.values())) == 1
        nn = run_cell("hampath:cycle:4", "group:nn2opt")
        assert nn.ok and nn.cost_fraction >= costs["group:hk"]

    def test_cd_transform_prices_identically(self):
        r = run_cell("hampath:gnp:5:0.45:s0", "hampath:cd")
        assert r.ok, r.error
        assert r.extra["identical"] == "True"
        assert r.extra["max_indegree"] == "2"


class TestVertexCoverGoldens:
    def test_threshold_brackets_the_exact_optimum(self):
        """2k'|VC_min| <= exact optimum <= cost of the min-cover
        strategy — the Theorem 3 accounting on the smallest instance."""
        opt = run_cell("vc:path:2:k3", "vc:opt")
        exact = run_cell("vc:path:2:k3", "exact")
        assert opt.ok and exact.ok, (opt.error, exact.error)
        dominant = int(opt.extra["dominant_term"])
        assert Fraction(dominant) <= exact.cost_fraction <= opt.cost_fraction
        # golden values: pin the measured numbers
        assert exact.cost_fraction == 3
        assert opt.cost_fraction == 7
        assert dominant == 2

    def test_cover_strategies_roundtrip_and_order(self):
        opt = run_cell("vc:cycle:6:k12", "vc:opt")
        approx = run_cell("vc:cycle:6:k12", "vc:2approx")
        assert opt.ok and approx.ok
        assert opt.extra["cover_roundtrip"] == "True"
        assert approx.extra["cover_roundtrip"] == "True"
        assert approx.cost_fraction >= opt.cost_fraction
        assert int(approx.extra["cover_size"]) <= 2 * int(opt.extra["cover_size"])


class TestGridGoldens:
    def test_greedy_follows_prediction_and_gap_appears_at_size(self):
        small_g = run_cell("ggrid:3x6", "grid:greedy")
        small_o = run_cell("ggrid:3x6", "grid:opt")
        big_g = run_cell("ggrid:5x20", "grid:greedy")
        big_o = run_cell("ggrid:5x20", "grid:opt")
        for r in (small_g, small_o, big_g, big_o):
            assert r.ok, r.error
        assert small_g.extra["followed_prediction"] == "True"
        assert big_g.extra["followed_prediction"] == "True"
        small_ratio = small_g.cost_fraction / small_o.cost_fraction
        big_ratio = big_g.cost_fraction / big_o.cost_fraction
        assert big_ratio > small_ratio > 1

    def test_cd_transform_keeps_the_gap_at_delta_2(self):
        g = run_cell("ggrid:3x6", "grid:cdgreedy")
        o = run_cell("ggrid:3x6", "grid:cdopt")
        assert g.ok and o.ok
        assert g.extra["max_indegree"] == o.extra["max_indegree"] == "2"
        assert g.cost_fraction > o.cost_fraction


class TestTableAndAppendixMethods:
    def test_table1_probe_matches_declared_models(self):
        for model in ("base", "oneshot", "nodel", "compcost"):
            r = run_cell("chain:1", "table1:probe", model=model)
            assert r.ok, r.error
            assert r.extra["matches_declared"] == "True"

    def test_appendixc_equivalences(self):
        r = run_cell("pyramid:2", "appendixc")
        assert r.ok, r.error
        opt = r.cost_fraction
        assert Fraction(r.extra["super_source_lifted"]) == opt
        assert Fraction(r.extra["super_source_opt"]) <= opt
        assert opt <= Fraction(r.extra["blue_sinks_cost"]) <= opt + int(
            r.extra["n_sinks"]
        )


class TestHardnessSmokeSpec:
    def test_spec_runs_green_and_checks_pass(self):
        spec = get_spec("hardness-smoke")
        results = Runner(jobs=0).run(spec)
        assert all(r.ok for r in results), [
            (r.dag, r.model, r.method, r.error) for r in results if not r.ok
        ]
        assert run_spec_checks(spec.name, results) >= 1

    def test_checks_catch_a_drifted_cost(self):
        from dataclasses import replace

        spec = get_spec("hardness-smoke")
        results = Runner(jobs=0).run(spec)
        broken = [
            replace(r, cost="999")
            if r.method == "exact" and r.model == "oneshot"
            else r
            for r in results
        ]
        with pytest.raises(AssertionError, match="hardness-smoke"):
            run_spec_checks(spec.name, broken)
