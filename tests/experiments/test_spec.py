"""Grid expansion, red-limit resolution, and the spec registry."""

import pytest

from repro.experiments import (
    ExperimentSpec,
    TaskSpec,
    all_specs,
    get_spec,
    register_spec,
    resolve_red_limit,
)
from repro.experiments.spec import split_dag_entry
from repro.generators import dag_from_spec


class TestResolveRedLimit:
    def test_absolute(self):
        assert resolve_red_limit(7, 3) == 7

    def test_min(self):
        assert resolve_red_limit("min", 3) == 3

    def test_min_plus(self):
        assert resolve_red_limit("min+2", 3) == 5

    def test_numeric_string(self):
        assert resolve_red_limit("4", 3) == 4


class TestDagEntry:
    def test_unpinned(self):
        assert split_dag_entry("pyramid:4") == ("pyramid:4", None)

    def test_pinned(self):
        assert split_dag_entry("matmul:3#r5") == ("matmul:3", 5)

    def test_pin_survives_colons(self):
        assert split_dag_entry("layered:3-3-2:d2:s9#r3") == (
            "layered:3-3-2:d2:s9",
            3,
        )


class TestExperimentSpec:
    def test_cartesian_product(self):
        spec = ExperimentSpec(
            name="t",
            dags=("chain:3", "chain:4"),
            models=("base", "oneshot"),
            methods=("baseline", "greedy"),
            red_limits=(2, 3),
        )
        tasks = spec.tasks()
        assert len(tasks) == 2 * 2 * 2 * 2
        assert len({(t.dag, t.model, t.method, t.red_limit) for t in tasks}) == 16

    def test_pinned_dag_overrides_sweep(self):
        spec = ExperimentSpec(
            name="t", dags=("chain:3#r2", "chain:4"), red_limits=(2, 3, 4)
        )
        tasks = spec.tasks()
        pinned = [t for t in tasks if t.dag == "chain:3"]
        swept = [t for t in tasks if t.dag == "chain:4"]
        assert [t.red_limit for t in pinned] == [2]
        assert [t.red_limit for t in swept] == [2, 3, 4]

    def test_requires_dags(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="t")

    def test_lists_coerced_to_tuples(self):
        spec = ExperimentSpec(name="t", dags=["chain:3"], models=["base"])
        assert spec.dags == ("chain:3",)
        assert hash(spec)  # stays hashable


class TestTaskHash:
    def test_spec_name_and_timeout_excluded(self):
        a = TaskSpec(spec="a", dag="chain:3", model="base", method="greedy",
                     red_limit=2, timeout=None)
        b = TaskSpec(spec="b", dag="chain:3", model="base", method="greedy",
                     red_limit=2, timeout=9.0)
        assert a.content_hash() == b.content_hash()

    def test_grid_coordinates_included(self):
        base = dict(spec="a", dag="chain:3", model="base", method="greedy",
                    red_limit=2)
        ref = TaskSpec(**base).content_hash()
        for change in (
            {"dag": "chain:4"},
            {"model": "oneshot"},
            {"method": "baseline"},
            {"red_limit": 3},
            {"epsilon": "1/2"},
        ):
            assert TaskSpec(**{**base, **change}).content_hash() != ref

    def test_file_dag_hash_tracks_contents(self, tmp_path):
        from repro import ComputationDAG
        from repro.io import dag_to_json

        path = tmp_path / "dag.json"
        path.write_text(dag_to_json(ComputationDAG([("a", "b")])))
        task = TaskSpec(spec="a", dag=f"@{path}", model="base",
                        method="greedy", red_limit=2)
        before = task.content_hash()
        assert before == task.content_hash()  # stable while unchanged
        path.write_text(dag_to_json(ComputationDAG([("a", "b"), ("b", "c")])))
        assert task.content_hash() != before  # editing the file invalidates

    def test_round_trip_dict(self):
        task = TaskSpec(spec="a", dag="chain:3", model="base",
                        method="greedy", red_limit="min+1")
        assert TaskSpec.from_dict(task.to_dict()) == task


class TestExplicitCells:
    def test_cells_appended_after_the_grid(self):
        spec = ExperimentSpec(
            name="t-cells",
            dags=("chain:3",),
            methods=("baseline",),
            cells=(("pyramid:2", "oneshot", "exact", 3),),
        )
        tasks = spec.tasks()
        assert len(tasks) == 2
        assert tasks[-1].dag == "pyramid:2"
        assert tasks[-1].method == "exact"
        assert tasks[-1].red_limit == 3

    def test_cells_only_spec_allowed(self):
        spec = ExperimentSpec(
            name="t-cells-only",
            cells=(("chain:3", "oneshot", "baseline", "min"),),
        )
        assert spec.n_tasks == 1

    def test_malformed_cell_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(
                name="t-bad-cell",
                cells=(("chain:3", "oneshot", "baseline"),),
            )


class TestRegistry:
    def test_builtins_registered(self):
        names = {s.name for s in all_specs()}
        assert {"smoke", "sec3-bounds", "hong-kung", "greedy-rules",
                "eviction", "fig4-tradeoff", "beam-ablation",
                "thm2-hampath", "thm3-vertex-cover", "thm4-greedy-grid",
                "hardness-smoke"} <= names

    def test_hardness_specs_carry_checks(self):
        from repro.experiments import checks_for

        for name in ("thm2-hampath", "thm3-vertex-cover", "thm4-greedy-grid",
                     "hardness-smoke", "fig1-cd", "fig2-h2c", "lemma1-length",
                     "table1-models", "table2-properties", "appendix-c"):
            assert checks_for(name), f"{name} has no assertion suite"

    def test_builtin_cells_parse(self):
        from repro.experiments import resolve_method

        for spec in all_specs():
            for dag, model, method, _red in spec.cells:
                assert dag_from_spec(dag).n_nodes > 0
                assert callable(resolve_method(method))

    def test_builtin_dag_specs_parse(self):
        from repro.experiments.spec import split_dag_entry

        for spec in all_specs():
            for entry in spec.dags:
                dag, _ = split_dag_entry(entry)
                assert dag_from_spec(dag).n_nodes > 0

    def test_unknown_spec(self):
        with pytest.raises(KeyError):
            get_spec("no-such-spec")

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_spec(get_spec("smoke"))

    def test_tag_filter(self):
        assert all("ci" in s.tags for s in all_specs(tag="ci"))
        assert any(s.name == "smoke" for s in all_specs(tag="ci"))
