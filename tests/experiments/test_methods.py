"""The method registry: name resolution and outcome correctness."""

from fractions import Fraction

import pytest

from repro import PebblingInstance
from repro.experiments import TaskSpec, method_names, resolve_method
from repro.generators import dag_from_spec


def make(dag="pyramid:3", model="oneshot", red=3, method="greedy"):
    inst = PebblingInstance(dag=dag_from_spec(dag), model=model, red_limit=red)
    task = TaskSpec(spec="t", dag=dag, model=model, method=method, red_limit=red)
    return inst, task


class TestResolution:
    @pytest.mark.parametrize("name", [
        "baseline", "greedy", "exact", "local-search",
        "greedy:most-red-inputs", "greedy:red-ratio",
        "fixed-order:belady", "fixed-order:lru", "fixed-order:random7",
        "beam:4", "local-search:100", "sleep:0.01",
    ])
    def test_known_names_resolve(self, name):
        assert callable(resolve_method(name))

    @pytest.mark.parametrize("name", [
        "warp-drive", "greedy:bogus-rule", "fixed-order:bogus",
    ])
    def test_unknown_names_raise(self, name):
        with pytest.raises(ValueError):
            resolve_method(name)(*make())

    def test_method_names_lists_families(self):
        names = method_names()
        assert "baseline" in names and "exact" in names


class TestOutcomes:
    def test_exact_beats_or_matches_heuristics(self):
        inst, task = make()
        exact = resolve_method("exact")(inst, task).cost
        for name in ("baseline", "greedy", "beam:4", "fixed-order:belady"):
            assert resolve_method(name)(inst, task).cost >= exact

    def test_baseline_reports_naive_bound(self):
        inst, task = make(method="baseline")
        outcome = resolve_method("baseline")(inst, task)
        assert outcome.cost <= Fraction(outcome.extra["naive_bound"])

    def test_tradeoff_opt_matches_formula_shape(self):
        inst, task = make(dag="tradeoff:3x10", red=5, method="tradeoff-opt")
        outcome = resolve_method("tradeoff-opt")(inst, task)
        assert outcome.cost >= 0
        assert "paper_formula" in outcome.extra

    def test_tradeoff_opt_requires_tradeoff_dag(self):
        inst, task = make(dag="pyramid:3", method="tradeoff-opt")
        with pytest.raises(ValueError):
            resolve_method("tradeoff-opt")(inst, task)
