"""The method registry: name resolution and outcome correctness."""

from fractions import Fraction

import pytest

from repro import PebblingInstance
from repro.experiments import TaskSpec, method_names, resolve_method
from repro.generators import dag_from_spec


def make(dag="pyramid:3", model="oneshot", red=3, method="greedy"):
    inst = PebblingInstance(dag=dag_from_spec(dag), model=model, red_limit=red)
    task = TaskSpec(spec="t", dag=dag, model=model, method=method, red_limit=red)
    return inst, task


class TestResolution:
    @pytest.mark.parametrize("name", [
        "baseline", "greedy", "exact", "local-search",
        "greedy:most-red-inputs", "greedy:red-ratio",
        "fixed-order:belady", "fixed-order:lru", "fixed-order:random7",
        "beam:4", "local-search:100", "sleep:0.01",
        "ml:exact", "ml:topo",
        "ml:exact:hier:3,6:1,4", "ml:topo:hier:4,16:1,8",
        "heur:portfolio", "heur:portfolio:4",
    ])
    def test_known_names_resolve(self, name):
        assert callable(resolve_method(name))

    @pytest.mark.parametrize("name", [
        "warp-drive", "greedy:bogus-rule", "fixed-order:bogus",
        "ml:bogus", "ml:exact:pyramid:3",
        "ml:exact:hier:3,6:1",  # malformed hierarchy must fail at resolve time
        "heur:bogus", "heur:portfolio:0", "heur:portfolio:x",
    ])
    def test_unknown_names_raise(self, name):
        with pytest.raises(ValueError):
            resolve_method(name)(*make())

    def test_method_names_lists_families(self):
        names = method_names()
        assert "baseline" in names and "exact" in names


class TestOutcomes:
    def test_exact_beats_or_matches_heuristics(self):
        inst, task = make()
        exact = resolve_method("exact")(inst, task).cost
        for name in ("baseline", "greedy", "beam:4", "fixed-order:belady"):
            assert resolve_method(name)(inst, task).cost >= exact

    def test_baseline_reports_naive_bound(self):
        inst, task = make(method="baseline")
        outcome = resolve_method("baseline")(inst, task)
        assert outcome.cost <= Fraction(outcome.extra["naive_bound"])

    def test_tradeoff_opt_matches_formula_shape(self):
        inst, task = make(dag="tradeoff:3x10", red=5, method="tradeoff-opt")
        outcome = resolve_method("tradeoff-opt")(inst, task)
        assert outcome.cost >= 0
        assert "paper_formula" in outcome.extra

    def test_tradeoff_opt_requires_tradeoff_dag(self):
        inst, task = make(dag="pyramid:3", method="tradeoff-opt")
        with pytest.raises(ValueError):
            resolve_method("tradeoff-opt")(inst, task)


class TestHeuristicPortfolio:
    def test_at_least_as_good_as_every_member(self):
        inst, task = make(method="heur:portfolio")
        outcome = resolve_method("heur:portfolio")(inst, task)
        members = {
            k[len("cost["):-1]: Fraction(v)
            for k, v in outcome.extra.items()
            if k.startswith("cost[")
        }
        assert members, "portfolio must report per-member costs"
        assert outcome.cost == min(members.values())
        assert outcome.extra["winner"] in members

    def test_never_beats_exact(self):
        inst, task = make(method="heur:portfolio")
        exact = resolve_method("exact")(inst, task).cost
        assert resolve_method("heur:portfolio")(inst, task).cost >= exact

    def test_beam_width_adds_a_member(self):
        inst, task = make(method="heur:portfolio:4")
        outcome = resolve_method("heur:portfolio:4")(inst, task)
        assert "cost[beam:4]" in outcome.extra

    def test_hong_kung_bound_reported_on_matmul(self):
        inst, task = make(dag="matmul:2", red=4, method="heur:portfolio")
        outcome = resolve_method("heur:portfolio")(inst, task)
        assert "hong_kung_bound" in outcome.extra
        assert float(outcome.cost) >= float(outcome.extra["hong_kung_bound"]) - 4

    def test_no_bound_on_unrecognised_dags(self):
        inst, task = make(dag="pyramid:3", method="heur:portfolio")
        outcome = resolve_method("heur:portfolio")(inst, task)
        assert "hong_kung_bound" not in outcome.extra


class TestMultilevelMethods:
    def test_default_hierarchy_matches_base_exact(self):
        """ml:exact's default 2-level hierarchy (R, unbounded) with unit
        costs is the red-blue base game: it must agree with plain exact
        on a base-model instance."""
        inst, task = make(model="base", method="ml:exact")
        ml = resolve_method("ml:exact")(inst, task)
        rb = resolve_method("exact")(inst, task)
        assert ml.cost == rb.cost
        assert ml.extra["levels"] == "2"

    def test_topo_upper_bounds_exact(self):
        inst, task = make(model="base")
        topo = resolve_method("ml:topo")(inst, task)
        exact = resolve_method("ml:exact")(inst, task)
        assert exact.cost <= topo.cost
        assert "peak_usage" in topo.extra

    def test_explicit_hierarchy_is_parsed_from_the_name(self):
        inst, task = make(model="base", method="ml:exact:hier:3,6:1,4")
        outcome = resolve_method("ml:exact:hier:3,6:1,4")(inst, task)
        assert outcome.extra["levels"] == "3"
        assert outcome.extra["capacities"] == "3,6,inf"

    def test_too_small_hierarchy_classified_infeasible_like_red_blue(self):
        """A level-0 capacity below Delta+1 must land in the same result
        bucket as an R below Delta+1 does for the red-blue methods."""
        from repro.experiments import Runner

        task = TaskSpec(
            spec="t", dag="pyramid:3", model="base",
            method="ml:exact:hier:2:1", red_limit=3,
        )
        result = Runner(jobs=0).run([task])[0]
        assert result.status.value == "infeasible"
