"""Result stores: round-trips, eviction, version checking, accounting."""

import json
import sqlite3

import pytest

from repro._version import __version__
from repro.experiments import (
    JsonDirStore,
    MemoryResultStore,
    Runner,
    RunResult,
    SQLiteResultStore,
    TaskSpec,
    execute_task,
    open_store,
)
from repro.experiments.store import STORE_SCHEMA_VERSION


def task_for(dag="chain:3", method="baseline", **kw):
    return TaskSpec(spec="t", dag=dag, model="oneshot", method=method,
                    red_limit="min", **kw)


def result_for(task):
    return execute_task(task)


@pytest.fixture(params=["memory", "jsondir", "sqlite-mem", "sqlite-file"])
def store(request, tmp_path):
    if request.param == "memory":
        s = MemoryResultStore()
    elif request.param == "jsondir":
        s = JsonDirStore(tmp_path / "cache")
    elif request.param == "sqlite-mem":
        s = SQLiteResultStore(":memory:")
    else:
        s = SQLiteResultStore(tmp_path / "store.sqlite")
    yield s
    s.close()


class TestRoundTrip:
    def test_miss_then_hit(self, store):
        task = task_for()
        assert store.get(task) is None
        store.put(result_for(task))
        hit = store.get(task)
        assert hit is not None
        assert hit.cached
        assert hit.cost == result_for(task).cost
        assert store.stats() == {"hits": 1, "misses": 1, "puts": 1}

    def test_hit_relabelled_for_asking_spec(self, store):
        task = task_for()
        store.put(result_for(task))
        other = TaskSpec(**{**task.to_dict(), "spec": "other"})
        assert store.get(other).spec == "other"

    def test_failures_never_stored(self, store):
        bad = task_for(method="warp-drive")
        store.put(result_for(bad))  # status=error: ignored
        assert store.get(bad) is None
        assert store.puts == 0

    def test_infeasible_is_cacheable(self, store):
        task = TaskSpec(spec="t", dag="pyramid:3", model="oneshot",
                        method="greedy", red_limit=1)
        store.put(result_for(task))
        assert store.get(task).status.value == "infeasible"


class TestSQLiteStore:
    def test_persists_across_connections(self, tmp_path):
        path = tmp_path / "s.sqlite"
        task = task_for()
        with SQLiteResultStore(path) as store:
            store.put(result_for(task))
        with SQLiteResultStore(path) as store:
            assert store.get(task) is not None

    def test_lru_eviction(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "s.sqlite", max_rows=2)
        tasks = [task_for(dag=f"chain:{n}") for n in (2, 3, 4)]
        store.put(result_for(tasks[0]))
        store.put(result_for(tasks[1]))
        assert store.get(tasks[0]) is not None  # refresh 0: 1 becomes LRU
        store.put(result_for(tasks[2]))         # evicts 1
        assert len(store) == 2
        assert store.get(tasks[1]) is None
        assert store.get(tasks[0]) is not None
        assert store.get(tasks[2]) is not None
        store.close()

    def test_stale_version_row_not_served(self, tmp_path):
        """A row written by an older repro version is never served fresh."""
        path = tmp_path / "s.sqlite"
        task = task_for()
        store = SQLiteResultStore(path)
        store.put(result_for(task))
        # simulate an old-kernel store: rewrite the version column in place
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE results SET repro_version = '0.0.1'")
        assert store.get(task) is None
        store.close()
        # check_version=False opts back in (forensics / read-only tooling)
        with SQLiteResultStore(path, check_version=False) as trusting:
            assert trusting.get(task) is not None

    def test_schema_version_mismatch_drops_table(self, tmp_path):
        path = tmp_path / "s.sqlite"
        task = task_for()
        with SQLiteResultStore(path) as store:
            store.put(result_for(task))
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
                (str(STORE_SCHEMA_VERSION + 1),),
            )
        with SQLiteResultStore(path) as store:  # rebuilt: cache dropped, usable
            assert store.get(task) is None
            store.put(result_for(task))
            assert store.get(task) is not None

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        path = tmp_path / "s.sqlite"
        task = task_for()
        store = SQLiteResultStore(path)
        store.put(result_for(task))
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE results SET payload = '{ not json'")
        assert store.get(task) is None
        store.close()

    def test_current_version_recorded(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with SQLiteResultStore(path) as store:
            store.put(result_for(task_for()))
        with sqlite3.connect(path) as conn:
            (version,) = conn.execute(
                "SELECT repro_version FROM results"
            ).fetchone()
        assert version == __version__


class TestContentHashVersioning:
    def test_hash_depends_on_package_version(self, monkeypatch):
        task = task_for()
        before = task.content_hash()
        monkeypatch.setattr("repro.experiments.spec.__version__", "99.0.0")
        assert task.content_hash() != before

    def test_runner_ignores_other_version_cache(self, tmp_path, monkeypatch):
        """End to end: a cache dir written under another version misses."""
        spec_tasks = [task_for()]
        Runner(jobs=0, cache_dir=tmp_path).run(spec_tasks)
        monkeypatch.setattr("repro.experiments.spec.__version__", "99.0.0")
        results = Runner(jobs=0, cache_dir=tmp_path).run(spec_tasks)
        assert not results[0].cached


class TestOpenStore:
    def test_none(self):
        assert open_store(None) is None
        assert open_store("none") is None

    def test_memory(self):
        assert isinstance(open_store("memory"), MemoryResultStore)

    def test_sqlite_by_suffix(self, tmp_path):
        store = open_store(str(tmp_path / "x.sqlite"))
        assert isinstance(store, SQLiteResultStore)
        store.close()

    def test_sqlite_by_prefix(self, tmp_path):
        store = open_store("sqlite:" + str(tmp_path / "plain"))
        assert isinstance(store, SQLiteResultStore)
        store.close()

    def test_directory_fallback(self, tmp_path):
        assert isinstance(open_store(str(tmp_path / "cachedir")), JsonDirStore)


class TestRunnerStoreIntegration:
    def test_runner_with_sqlite_store(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "s.sqlite")
        tasks = [task_for(dag="chain:4"), task_for(dag="chain:5")]
        first = Runner(jobs=0, store=store).run(tasks)
        assert not any(r.cached for r in first)
        second = Runner(jobs=0, store=store).run(tasks)
        assert all(r.cached for r in second)
        assert [r.cost for r in first] == [r.cost for r in second]
        store.close()

    def test_json_dir_format_unchanged(self, tmp_path):
        """cache_dir keeps the PR 1 <hash>.json file layout."""
        task = task_for()
        Runner(jobs=0, cache_dir=tmp_path).run([task])
        path = tmp_path / (task.content_hash() + ".json")
        assert path.exists()
        assert json.loads(path.read_text())["dag"] == task.dag
