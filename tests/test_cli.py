"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestInfo:
    def test_pyramid(self, capsys):
        code, out = run(capsys, "info", "--dag", "pyramid:3")
        assert code == 0
        assert "nodes        : 10" in out

    def test_all_generator_specs(self, capsys):
        for spec in ["chain:5", "tree:4", "grid:2x3", "butterfly:2", "matmul:2"]:
            code, out = run(capsys, "info", "--dag", spec)
            assert code == 0 and "nodes" in out

    def test_json_file(self, tmp_path, capsys):
        from repro import ComputationDAG
        from repro.io import dag_to_json

        path = tmp_path / "dag.json"
        path.write_text(dag_to_json(ComputationDAG([("a", "b")])))
        code, out = run(capsys, "info", "--dag", f"@{path}")
        assert code == 0 and "nodes        : 2" in out

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            main(["info", "--dag", "klein-bottle:4"])


class TestSolve:
    def test_exact_cost_reported(self, capsys):
        code, out = run(capsys, "solve", "--dag", "chain:5", "--red", "2")
        assert code == 0
        assert "optimal  : 0" in out

    def test_show_schedule(self, capsys):
        code, out = run(
            capsys, "solve", "--dag", "chain:3", "--red", "2", "--show-schedule"
        )
        assert "C(0)" in out

    def test_model_flag(self, capsys):
        code, out = run(
            capsys, "solve", "--dag", "chain:5", "--red", "2", "--model", "nodel"
        )
        assert "optimal  : 3" in out


class TestHeuristics:
    def test_greedy(self, capsys):
        code, out = run(capsys, "greedy", "--dag", "pyramid:3")
        assert code == 0 and "cost" in out

    def test_greedy_rules(self, capsys):
        for rule in ["most-red-inputs", "fewest-blue-inputs", "red-ratio"]:
            code, out = run(
                capsys, "greedy", "--dag", "pyramid:2", "--rule", rule
            )
            assert code == 0 and rule in out

    def test_baseline_within_bound(self, capsys):
        code, out = run(capsys, "baseline", "--dag", "grid:3x3")
        assert code == 0 and "bound" in out


class TestExperiments:
    def test_tradeoff_plot(self, capsys):
        code, out = run(capsys, "tradeoff", "--d", "2", "--chain", "6")
        assert code == 0
        assert "opt(R)" in out

    def test_hampath_agrees_with_truth(self, capsys):
        code, out = run(capsys, "hampath", "--n", "5", "--p", "0.5", "--seed", "3")
        assert code == 0
        lines = [l for l in out.splitlines() if "hamiltonian=" in l]
        verdicts = {l.split("hamiltonian=")[1] for l in lines}
        assert len(verdicts) == 1  # pebbling verdict == ground truth

    def test_tables(self, capsys):
        code, out = run(capsys, "table1")
        assert "0,inf,inf,..." in out
        code, out = run(capsys, "table2")
        assert "NP-complete" in out
