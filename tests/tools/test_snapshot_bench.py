"""The BENCH_<n>.json series is append-only and never overwrites."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "snapshot_bench", REPO_ROOT / "tools" / "snapshot_bench.py"
)
snapshot_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(snapshot_bench)


def _source(tmp_path):
    src = tmp_path / "benchmark.json"
    src.write_text(json.dumps({"benchmarks": []}), encoding="utf-8")
    return src


def test_first_snapshot_is_bench_1(tmp_path):
    target = snapshot_bench.snapshot(_source(tmp_path), tmp_path)
    assert target.name == "BENCH_1.json"
    payload = json.loads(target.read_text(encoding="utf-8"))
    assert payload["snapshot"]["source"] == "benchmark.json"


def test_series_appends_past_the_highest_index(tmp_path):
    (tmp_path / "BENCH_1.json").write_text("{}", encoding="utf-8")
    (tmp_path / "BENCH_7.json").write_text("{}", encoding="utf-8")
    target = snapshot_bench.snapshot(_source(tmp_path), tmp_path)
    assert target.name == "BENCH_8.json"


def test_existing_snapshots_are_never_overwritten(tmp_path):
    committed = tmp_path / "BENCH_1.json"
    committed.write_text('{"committed": true}', encoding="utf-8")
    snapshot_bench.snapshot(_source(tmp_path), tmp_path)
    assert json.loads(committed.read_text(encoding="utf-8")) == {
        "committed": True,
    }


def test_lost_race_advances_to_the_next_free_index(tmp_path, monkeypatch):
    # simulate a concurrent writer landing on the same index first
    real = snapshot_bench.next_snapshot_path
    raced = {"done": False}

    def contended(root):
        target = real(root)
        if not raced["done"]:
            raced["done"] = True
            target.write_text('{"winner": "other"}', encoding="utf-8")
        return target

    monkeypatch.setattr(snapshot_bench, "next_snapshot_path", contended)
    target = snapshot_bench.snapshot(_source(tmp_path), tmp_path)
    assert target.name == "BENCH_2.json"
    assert json.loads((tmp_path / "BENCH_1.json").read_text(encoding="utf-8")) == {
        "winner": "other",
    }
