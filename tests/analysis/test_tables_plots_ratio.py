"""Tests for table generation, ASCII plotting and ratio experiments."""

import pytest

from repro import PebblingInstance
from repro.analysis import (
    RatioPoint,
    ascii_plot,
    greedy_grid_ratio_sweep,
    greedy_vs_optimal,
    render_table,
    table1_rows,
    table2_rows,
)
from repro.generators import pyramid_dag


class TestTable1:
    def test_four_rows_in_model_order(self):
        rows = table1_rows()
        assert [r["model"] for r in rows] == ["base", "oneshot", "nodel", "compcost"]

    def test_matches_paper_entries(self):
        rows = {r["model"]: r for r in table1_rows()}
        assert rows["oneshot"]["compute"] == "0,inf,inf,..."
        assert rows["nodel"]["delete"] == "inf"
        assert rows["compcost"]["compute"] == "1/100"
        assert all(r["blue_to_red"] == "1" for r in rows.values())

    def test_custom_epsilon(self):
        rows = {r["model"]: r for r in table1_rows(epsilon="1/10")}
        assert rows["compcost"]["compute"] == "1/10"


class TestTable2:
    def test_four_rows_with_expected_columns(self):
        rows = table2_rows()
        assert len(rows) == 4
        for row in rows:
            assert set(row) == {
                "model", "cost_range", "optimal_length", "complexity",
                "greedy_ratio",
            }

    def test_cost_ranges_computed_from_bounds(self):
        dag = pyramid_dag(2)
        rows = {r["model"]: r for r in table2_rows(dag, 3)}
        # nodel lower bound n - R = 6 - 3 on the 6-node pyramid
        assert rows["nodel"]["cost_range"].startswith("[3, 30]")
        assert rows["oneshot"]["cost_range"].startswith("[0, 30]")

    def test_lemma1_reflected(self):
        rows = {r["model"]: r for r in table2_rows()}
        assert "O(Delta*n)" in rows["oneshot"]["optimal_length"]
        assert "poly" in rows["base"]["optimal_length"]


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len({len(l) for l in lines[1:]}) <= 2  # header sep may differ

    def test_empty(self):
        assert render_table([], title="x") == "x"

    def test_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestAsciiPlot:
    def test_contains_markers_and_labels(self):
        text = ascii_plot(
            {"s1": [(0, 0), (1, 1)], "s2": [(0, 1), (1, 0)]},
            title="P", x_label="R", y_label="cost",
        )
        assert "P" in text
        assert "*" in text and "o" in text
        assert "s1" in text and "s2" in text

    def test_empty(self):
        assert ascii_plot({}, title="none") == "none"

    def test_single_point_no_crash(self):
        assert "*" in ascii_plot({"s": [(1, 1)]})


class TestRatioExperiments:
    def test_ratio_point_math(self):
        from fractions import Fraction

        p = RatioPoint(n_nodes=5, greedy_cost=Fraction(6), optimal_cost=Fraction(2))
        assert p.ratio == 3.0
        z = RatioPoint(n_nodes=5, greedy_cost=Fraction(0), optimal_cost=Fraction(0))
        assert z.ratio == 1.0
        inf = RatioPoint(n_nodes=5, greedy_cost=Fraction(1), optimal_cost=Fraction(0))
        assert inf.ratio == float("inf")

    def test_greedy_vs_optimal_on_pyramid(self):
        inst = PebblingInstance(dag=pyramid_dag(2), model="oneshot", red_limit=3)
        p = greedy_vs_optimal(inst)
        assert p.greedy_cost >= p.optimal_cost
        assert p.n_nodes == 6

    def test_grid_sweep_ratio_grows(self):
        points = greedy_grid_ratio_sweep([(3, 5), (5, 12)])
        assert len(points) == 2
        assert points[1].ratio > points[0].ratio
