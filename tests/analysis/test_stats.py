"""Tests for schedule statistics."""

import pytest

from repro import ComputationDAG, Compute, Delete, Load, PebblingInstance, Store
from repro.analysis import schedule_stats
from repro.generators import grid_stencil_dag, pyramid_dag
from repro.heuristics import fixed_order_schedule


@pytest.fixture
def inst():
    dag = ComputationDAG([("a", "b"), ("b", "c")])
    return PebblingInstance(dag=dag, model="oneshot", red_limit=2)


class TestScheduleStats:
    def test_transfer_accounting(self, inst):
        sched = [Compute("a"), Compute("b"), Store("a"), Compute("c"),
                 Delete("b"), Load("a")]
        stats = schedule_stats(inst, sched)
        assert stats.transfers_by_node == {"a": 2}
        assert stats.total_transfers == 2
        assert stats.cost == 2

    def test_working_set_profile(self, inst):
        sched = [Compute("a"), Compute("b"), Store("a"), Compute("c")]
        stats = schedule_stats(inst, sched)
        assert stats.working_set == (1, 2, 1, 2)
        assert stats.peak_working_set == 2
        assert stats.mean_working_set == 1.5

    def test_reuse_distances(self):
        # b is used by two consumers three moves apart
        dag = ComputationDAG([("b", "x"), ("b", "y")])
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=3)
        sched = [Compute("b"), Compute("x"), Compute("y")]
        stats = schedule_stats(inst, sched)
        assert stats.reuse_distances == (1,)
        assert stats.mean_reuse_distance == 1.0

    def test_no_reuse_yields_none(self, inst):
        stats = schedule_stats(inst, [Compute("a")])
        assert stats.mean_reuse_distance is None

    def test_load_reacquisition_counts_as_use(self, inst):
        """A Load re-acquiring a value is a use (the docstring's
        "(Load/Compute) uses"): it closes a reuse interval and opens the
        next one.  The pre-fix code only saw Compute inputs."""
        # a is used at move 1 (input of b), re-acquired at move 5
        sched = [Compute("a"), Compute("b"), Store("a"), Compute("c"),
                 Delete("b"), Load("a")]
        stats = schedule_stats(inst, sched)
        assert stats.reuse_distances == (4,)

    def test_load_then_compute_measures_from_the_load(self):
        dag = ComputationDAG([("b", "x"), ("b", "y")])
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=3)
        sched = [Compute("b"), Compute("x"), Store("b"), Load("b"), Compute("y")]
        # b used at 1 (input of x), re-acquired at 3, used again at 4
        stats = schedule_stats(inst, sched)
        assert stats.reuse_distances == (2, 1)

    def test_working_set_semantics_unchanged_by_load_fix(self, inst):
        sched = [Compute("a"), Compute("b"), Store("a"), Compute("c"),
                 Delete("b"), Load("a")]
        stats = schedule_stats(inst, sched)
        assert stats.working_set == (1, 2, 1, 2, 1, 2)

    def test_hottest_nodes_sorted(self):
        dag = grid_stencil_dag(4, 4)
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=3)
        stats = schedule_stats(inst, fixed_order_schedule(inst))
        counts = [c for _, c in stats.hottest_nodes]
        assert counts == sorted(counts, reverse=True)
        assert len(stats.hottest_nodes) <= 10

    def test_stats_cost_matches_simulator(self):
        from repro import PebblingSimulator

        dag = pyramid_dag(3)
        inst = PebblingInstance(dag=dag, model="nodel", red_limit=3)
        sched = fixed_order_schedule(inst)
        stats = schedule_stats(inst, sched)
        assert stats.cost == PebblingSimulator(inst).run(sched).cost

    def test_illegal_schedule_raises(self, inst):
        from repro import IllegalMoveError

        with pytest.raises(IllegalMoveError):
            schedule_stats(inst, [Compute("c")])
