"""Pivot/compare tables over RunResult sets."""

from repro.analysis import compare_results, results_table, summarize_results
from repro.experiments import RunResult, RunStatus


def result(dag="chain:3", model="oneshot", method="greedy", red=2,
           cost="4", status="ok", cached=False, wall=0.1):
    return RunResult(
        spec="s", dag=dag, model=model, method=method, red_limit=red,
        cost=cost if status == "ok" else None, status=status,
        cached=cached, wall_time=wall,
    )


class TestResultsTable:
    def test_pivot_one_row_per_instance(self):
        rows = results_table([
            result(method="greedy", cost="4"),
            result(method="exact", cost="2"),
            result(dag="chain:4", method="greedy", cost="6"),
            result(dag="chain:4", method="exact", cost="6"),
        ])
        assert len(rows) == 2
        assert rows[0]["greedy"] == "4" and rows[0]["exact"] == "2"

    def test_failed_cells_show_status(self):
        rows = results_table([result(status="timeout")])
        assert rows[0]["greedy"] == "timeout"

    def test_missing_cells_blank(self):
        rows = results_table([
            result(method="greedy"),
            result(dag="chain:4", method="exact"),
        ])
        assert rows[0]["exact"] == ""


class TestCompareResults:
    def test_ratio(self):
        a = [result(cost="4")]
        b = [result(cost="6")]
        rows = compare_results(a, b)
        assert rows[0]["ratio"] == "1.50"

    def test_equal_costs(self):
        rows = compare_results([result()], [result()])
        assert rows[0]["ratio"] == "1.00"

    def test_zero_baseline(self):
        rows = compare_results([result(cost="0")], [result(cost="3")])
        assert rows[0]["ratio"] == "inf"

    def test_unmatched_cells_kept(self):
        rows = compare_results([result()], [result(dag="chain:9")])
        assert len(rows) == 2
        assert rows[0]["candidate"] == ""  # baseline-only cell
        assert rows[1]["baseline"] == "" and rows[1]["candidate"] == "4"

    def test_failed_cell_no_ratio(self):
        rows = compare_results([result()], [result(status="error")])
        assert rows[0]["ratio"] == ""

    def test_custom_labels(self):
        rows = compare_results([result()], [result()], labels=("before", "after"))
        assert rows[0]["before"] == "4" and rows[0]["after"] == "4"


class TestSummarize:
    def test_counters(self):
        summary = summarize_results([
            result(), result(status="timeout"),
            result(cached=True), result(status="error"),
        ])
        assert summary["tasks"] == 4
        assert summary["ok"] == 2
        assert summary["timeout"] == 1
        assert summary["error"] == 1
        assert summary["cached"] == 1
