"""Tests for tradeoff curves."""

from fractions import Fraction

import pytest

from repro import PebblingInstance, PebblingSimulator
from repro.analysis import TradeoffCurve, tradeoff_curve
from repro.gadgets import optimal_tradeoff_schedule, tradeoff_dag
from repro.generators import pyramid_dag
from repro.solvers import solve_optimal


class TestTradeoffCurve:
    def curve(self):
        return TradeoffCurve(
            points=((3, Fraction(10)), (4, Fraction(6)), (5, Fraction(0)))
        )

    def test_accessors(self):
        c = self.curve()
        assert c.r_values == [3, 4, 5]
        assert c.cost_at(4) == 6
        with pytest.raises(KeyError):
            c.cost_at(7)

    def test_monotonicity(self):
        assert self.curve().is_monotone_decreasing()
        bad = TradeoffCurve(points=((3, Fraction(1)), (4, Fraction(2))))
        assert not bad.is_monotone_decreasing()

    def test_drops_and_max_drop(self):
        c = self.curve()
        assert c.drops() == [4, 6]
        assert c.max_drop() == 6

    def test_max_drop_law(self):
        c = self.curve()
        assert c.respects_max_drop_law(3)  # 2n = 6 >= max drop
        assert not c.respects_max_drop_law(2)  # 2n = 4 < 6

    def test_saturation(self):
        assert self.curve().saturation_r() == 5
        c = TradeoffCurve(points=((3, Fraction(5)),))
        assert c.saturation_r() is None

    def test_rejects_unsorted_points(self):
        with pytest.raises(ValueError):
            TradeoffCurve(points=((5, Fraction(0)), (3, Fraction(2))))

    def test_empty_curve(self):
        c = TradeoffCurve(points=())
        assert c.max_drop() == 0


class TestMeasuredCurves:
    def test_exact_curve_on_pyramid(self):
        dag = pyramid_dag(2)
        inst = PebblingInstance(dag=dag, model="oneshot", red_limit=3)
        curve = tradeoff_curve(
            inst,
            [3, 4, 5],
            lambda i: solve_optimal(i, return_schedule=False).cost,
        )
        assert curve.is_monotone_decreasing()
        assert curve.respects_max_drop_law(dag.n_nodes)

    def test_figure4_curve_via_strategy(self):
        d, n = 3, 15
        td = tradeoff_dag(d, n)
        inst = PebblingInstance(dag=td.dag, model="oneshot", red_limit=d + 2)

        def strategy_cost(i):
            sched = optimal_tradeoff_schedule(td, i.red_limit, "oneshot")
            return PebblingSimulator(i).run(sched, require_complete=True).cost

        curve = tradeoff_curve(inst, range(d + 2, 2 * d + 3), strategy_cost)
        assert curve.saturation_r() == 2 * d + 2
        assert curve.is_monotone_decreasing()
        assert curve.respects_max_drop_law(td.dag.n_nodes)
