"""Tests for the ASCII board timeline renderer."""

import pytest

from repro import ComputationDAG, Compute, PebblingInstance, Store
from repro.analysis import render_timeline
from repro.generators import chain_dag


@pytest.fixture
def inst():
    return PebblingInstance(dag=chain_dag(3), model="nodel", red_limit=2)


class TestTimeline:
    def test_one_line_per_move_plus_header(self, inst):
        sched = [Compute(0), Compute(1), Store(0), Compute(2)]
        text = render_timeline(inst, sched)
        assert len(text.splitlines()) == 5

    def test_glyphs(self, inst):
        sched = [Compute(0), Compute(1), Store(0), Compute(2)]
        lines = render_timeline(inst, sched).splitlines()
        assert "R" in lines[1]          # 0 computed red
        assert "b" in lines[3]          # 0 stored blue
        assert "cost 1" in lines[3]

    def test_illegal_schedule_raises(self, inst):
        from repro import IllegalMoveError

        with pytest.raises(IllegalMoveError):
            render_timeline(inst, [Compute(2)])

    def test_custom_column_order(self, inst):
        text = render_timeline(inst, [Compute(0)], nodes=[2, 1, 0])
        header = text.splitlines()[0]
        assert header.index("2") < header.index("0")

    def test_unknown_column_rejected(self, inst):
        with pytest.raises(ValueError):
            render_timeline(inst, [], nodes=["zz"])

    def test_long_schedules_elided(self):
        dag = chain_dag(2)
        inst = PebblingInstance(dag=dag, model="base", red_limit=2)
        sched = [Compute(0)]
        from repro import Delete

        for _ in range(150):
            sched += [Delete(0), Compute(0)]
        sched += [Compute(1)]
        text = render_timeline(inst, sched, max_steps=50)
        assert "elided" in text
        assert len(text.splitlines()) < 60

    def test_deleted_node_marked_computed(self):
        dag = ComputationDAG(nodes=["x", "y"])
        inst = PebblingInstance(dag=dag, model="base", red_limit=1)
        from repro import Delete

        text = render_timeline(inst, [Compute("x"), Delete("x"), Compute("y")])
        last = text.splitlines()[-1]
        assert "." in last  # x computed but unpebbled
