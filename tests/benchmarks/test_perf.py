"""Performance suite: simulator throughput and exact-solver expansion rate.

Two kinds of tests live here:

* ``benchmark``-fixture tests, which the CI ``benchmarks`` job runs with
  ``--benchmark-enable --benchmark-json`` and uploads as an informational
  artifact.  In the regular (tier-1) test run the project-wide
  ``--benchmark-disable`` makes each of them a single plain call, so they
  double as smoke tests.  ``extra_info`` records the work done
  (moves/expansions) so rates are derivable from the artifact.
* ``test_bitmask_kernel_speedup_over_legacy``, the acceptance gate of
  ISSUE 2: the bitmask kernel must sustain at least a 5x higher
  expansions/sec rate than the legacy frozenset solver on a pyramid DAG.
  It times both engines directly (best-of-N, same interpreter, same
  instance).  The full 5x bar is enforced where the measurement is the
  point — benchmark-enabled runs, i.e. the CI ``benchmarks`` job, which
  also records the ratio in the JSON artifact; the gating tier-1 run
  (benchmarks disabled, noisy shared runners, ``-x``) asserts a wide
  1.5x sanity floor instead — low enough that best-of-3 timing jitter
  cannot abort the suite, high enough to catch "kernel slower than the
  legacy solver" regressions.
* ``test_numpy_batch_speedup_over_bits``, the same shape of gate for the
  batched numpy frontier engine: on a frontier large enough to amortize
  per-batch overhead (pyramid:4 under oneshot), ``engine="numpy"`` must
  sustain at least 3x the scalar bitmask kernel's expansions/sec.  On
  small frontiers the batch engine is *slower* than the scalar kernel
  (per-batch numpy overhead dominates), which is why the gate pins a
  large instance; the crossover is documented in docs/architecture.md.
"""

import time

import pytest

from repro import PebblingInstance, PebblingSimulator
from repro.generators import grid_stencil_dag, pyramid_dag
from repro.heuristics import fixed_order_schedule
from repro.solvers import solve_optimal, solve_optimal_idastar, solve_optimal_legacy


# --------------------------------------------------------------------- #
# simulator step throughput
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def grid_instance():
    return PebblingInstance(
        dag=grid_stencil_dag(6, 6), model="oneshot", red_limit=4
    )


@pytest.fixture(scope="module")
def grid_schedule(grid_instance):
    return fixed_order_schedule(grid_instance)


def test_simulator_step_throughput(benchmark, grid_instance, grid_schedule):
    sim = PebblingSimulator(grid_instance)
    result = benchmark(sim.run, grid_schedule, require_complete=True)
    assert result.complete
    benchmark.extra_info["moves"] = len(grid_schedule)


# --------------------------------------------------------------------- #
# exact-solver expansion rate (both engines recorded in the artifact)
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def pyramid_instance():
    return PebblingInstance(dag=pyramid_dag(3), model="oneshot", red_limit=4)


def test_exact_solver_bits(benchmark, pyramid_instance):
    result = benchmark(
        solve_optimal, pyramid_instance, return_schedule=False
    )
    assert result.cost == 2
    benchmark.extra_info["expanded"] = result.expanded
    benchmark.extra_info["engine"] = "bits"


def test_exact_solver_legacy(benchmark, pyramid_instance):
    result = benchmark(
        solve_optimal_legacy, pyramid_instance, return_schedule=False
    )
    assert result.cost == 2
    benchmark.extra_info["expanded"] = result.expanded
    benchmark.extra_info["engine"] = "legacy"


def test_idastar_bits(benchmark, pyramid_instance):
    result = benchmark(
        solve_optimal_idastar, pyramid_instance, return_schedule=False
    )
    assert result.cost == 2
    benchmark.extra_info["expanded"] = result.expanded


# --------------------------------------------------------------------- #
# the ISSUE 2 acceptance gate: >= 5x expansions/sec on a pyramid DAG
# --------------------------------------------------------------------- #


def _expansion_rate(solver, instance, repeats=3):
    """Best-of-N expansions/sec (best = least timing noise)."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        result = solver(instance, return_schedule=False)
        elapsed = time.perf_counter() - start
        best = max(best, result.expanded / elapsed)
    return best, result


def test_bitmask_kernel_speedup_over_legacy(benchmark, pyramid_instance):
    bits_rate, bits_result = _expansion_rate(solve_optimal, pyramid_instance)
    legacy_rate, legacy_result = _expansion_rate(
        solve_optimal_legacy, pyramid_instance
    )
    assert bits_result.cost == legacy_result.cost == 2
    speedup = bits_rate / legacy_rate
    print(
        f"\nexpansions/sec: bits {bits_rate:,.0f} "
        f"vs legacy {legacy_rate:,.0f} -> {speedup:.1f}x"
    )
    benchmark.extra_info["bits_expansions_per_sec"] = round(bits_rate)
    benchmark.extra_info["legacy_expansions_per_sec"] = round(legacy_rate)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    # the fixture still needs one timed call to emit a JSON record
    benchmark(solve_optimal, pyramid_instance, return_schedule=False)
    threshold = 5.0 if benchmark.enabled else 1.5
    assert speedup >= threshold, (
        f"bitmask kernel regressed: only {speedup:.2f}x the legacy "
        f"expansion rate (ISSUE 2 requires >= 5x, sanity floor {threshold}x)"
    )


# --------------------------------------------------------------------- #
# the batched-frontier gate: numpy engine >= 3x bits on a large frontier
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def large_pyramid_instance():
    # pyramid:4 / oneshot / R4: ~500k expansions for the scalar kernel,
    # big equal-f buckets for the Dial queue -> wide batches.
    return PebblingInstance(dag=pyramid_dag(4), model="oneshot", red_limit=4)


def test_numpy_batch_speedup_over_bits(benchmark, large_pyramid_instance):
    inst = large_pyramid_instance
    numpy_rate, numpy_result = _expansion_rate(
        lambda i, **kw: solve_optimal(i, engine="numpy", **kw), inst, repeats=2
    )
    bits_rate, bits_result = _expansion_rate(solve_optimal, inst, repeats=2)
    assert numpy_result.cost == bits_result.cost == 4
    speedup = numpy_rate / bits_rate
    print(
        f"\nexpansions/sec: numpy {numpy_rate:,.0f} "
        f"vs bits {bits_rate:,.0f} -> {speedup:.1f}x"
    )
    benchmark.extra_info["numpy_expansions_per_sec"] = round(numpy_rate)
    benchmark.extra_info["bits_expansions_per_sec"] = round(bits_rate)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(
        solve_optimal, inst, engine="numpy", return_schedule=False
    )
    threshold = 3.0 if benchmark.enabled else 1.5
    assert speedup >= threshold, (
        f"batched numpy engine regressed: only {speedup:.2f}x the scalar "
        f"kernel expansion rate (target >= 3x, sanity floor {threshold}x)"
    )
