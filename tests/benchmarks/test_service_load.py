"""Service load test wired into the benchmark artifact.

The CI ``benchmarks`` job runs this with ``--benchmark-enable
--benchmark-json`` so requests/sec, cache hit rate and p50/p99 latency
land in the uploaded JSON (``extra_info``); in the tier-1 run the
project-wide ``--benchmark-disable`` reduces it to a single plain call,
doubling as an end-to-end service smoke test.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_service_load import check_metrics, run_load  # noqa: E402


def test_service_load(benchmark):
    metrics = benchmark.pedantic(
        lambda: run_load(clients=8, requests_per_client=25, jobs=2),
        rounds=1, iterations=1,
    )
    check_metrics(metrics)
    for key in ("rps", "p50_ms", "p99_ms", "cache_hit_rate",
                "requests", "executed", "coalesced"):
        benchmark.extra_info[key] = metrics[key]
